"""Multi-worker certain-answer computation.

``parallel_certain_answers`` mirrors the sequential facade
(:func:`repro.reasoning.answers.certain_answers`) for the proof-tree
engines, but decides the candidate tuples concurrently:

* the chase probe and the star-abstraction oracle are computed once,
  up front (they depend only on D and Σ);
* every candidate tuple is an independent decision task — the
  NLogSpace machine per tuple — dispatched to a thread pool;
* the result set is the union of probe answers and accepted tuples,
  so it equals the sequential result by construction, regardless of
  scheduling.

Python threads share one interpreter, so wall-clock scaling is
GIL-bound; the *shape* observable (how evenly work distributes, what
the workload's inherent parallelism is) is reported via the measured
per-tuple costs — see :mod:`repro.parallel.workplan` and benchmark E11.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..core.instance import Database, Instance
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from ..reasoning.abstraction import star_abstraction
from ..reasoning.answers import candidate_tuples, probe_instance
from ..reasoning.pwl_ward import decide_pwl_ward
from ..reasoning.ward import decide_ward

__all__ = ["ParallelReport", "parallel_certain_answers"]

Answer = Tuple[Constant, ...]


@dataclass
class ParallelReport:
    """Answers plus the per-tuple cost profile of the parallel run."""

    answers: Set[Answer]
    method: str
    workers: int
    probe_answers: int
    decided_tuples: int
    per_tuple_cost: Dict[Answer, int] = field(default_factory=dict)

    @property
    def total_work(self) -> int:
        return sum(self.per_tuple_cost.values())

    @property
    def span(self) -> int:
        """The most expensive single decision — the parallel floor."""
        return max(self.per_tuple_cost.values(), default=0)


def parallel_certain_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    workers: int = 4,
    method: str = "auto",
    probe_depth: int = 3,
    probe_atoms: int = 20000,
    store: str = "instance",
    report: bool = False,
    **engine_kwargs,
):
    """Compute cert(q, D, Σ) with per-tuple decisions on a thread pool.

    Supports the proof-tree methods (``"pwl"``, ``"ward"``, or
    ``"auto"`` dispatching between them); other program classes have no
    per-tuple parallel structure and belong to the sequential facade.

    ``store`` selects the probe's storage backend.  With
    ``store="sharded"`` the probe materializes into a
    :class:`~repro.storage.sharded.ShardedStore` and the probe answers
    are computed shard-parallel on the same worker pool — the second
    parallel axis next to per-tuple decisions (and the one that also
    bounds probe memory, since the sharded probe spills under budget).
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if method == "auto":
        if not is_warded(program):
            raise ValueError(
                "parallel_certain_answers needs a warded program"
            )
        method = "pwl" if is_piecewise_linear(program) else "ward"
    if method not in ("pwl", "ward"):
        raise ValueError(f"unknown parallel method {method!r}")

    decide = decide_pwl_ward if method == "pwl" else decide_ward
    abstraction = engine_kwargs.get("oracle")
    if not isinstance(abstraction, Instance):
        abstraction = star_abstraction(database, program.single_head())
    if "oracle" not in engine_kwargs and engine_kwargs.get("use_oracle", True):
        engine_kwargs["oracle"] = abstraction

    probe = probe_instance(
        database, program, probe_depth, probe_atoms, store=store
    )
    from ..storage.sharded import ShardedStore

    if isinstance(probe, ShardedStore):
        from .shardscan import shard_parallel_evaluate

        probe_answers = shard_parallel_evaluate(
            query, probe, workers=workers
        )
    else:
        probe_answers = query.evaluate(probe)
    # Candidate pools come from the abstraction (complete); the probe
    # only pre-settles positives — same split as the sequential facade.
    candidates = sorted(candidate_tuples(query, abstraction) - probe_answers,
                        key=str)

    per_tuple_cost: Dict[Answer, int] = {}
    answers: Set[Answer] = set(probe_answers)

    def decide_one(candidate: Answer) -> Tuple[Answer, bool, int]:
        decision = decide(
            query, candidate, database, program, **engine_kwargs
        )
        cost = decision.stats.visited
        return candidate, decision.accepted, cost

    if candidates:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for candidate, accepted, cost in pool.map(decide_one, candidates):
                per_tuple_cost[candidate] = cost
                if accepted:
                    answers.add(candidate)

    result = ParallelReport(
        answers=answers,
        method=method,
        workers=workers,
        probe_answers=len(probe_answers),
        decided_tuples=len(candidates),
        per_tuple_cost=per_tuple_cost,
    )
    return result if report else result.answers
