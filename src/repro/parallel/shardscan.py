"""Shard-parallel CQ evaluation over a :class:`ShardedStore`.

The sharded backend hash-partitions every relation, which gives query
evaluation a partitioning that costs nothing to compute: every
homomorphism from a CQ body into the store maps the *pinned* first atom
to exactly one stored atom, and that atom lives in exactly one shard.
Fanning the pinned atom's matches out per shard therefore partitions
the homomorphism space exactly — the per-shard result sets union to
``query.evaluate(store)`` by construction, whatever the scheduling.

Each shard task scans and decodes its own snapshot *inside the worker*
(:meth:`ShardedStore.probe_shards` defers filter and decode into the
returned callables), then finishes its matches through the ordinary
backtracking join seeded with the pinned atom's bindings.  As with the
per-tuple executor, Python threads bound wall-clock scaling by the GIL;
the observable is the work *shape* (per-shard match counts — how even
the hash partitioning is), reported via :class:`ShardScanReport`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.atoms import Atom
from ..core.homomorphism import homomorphisms
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..storage.sharded import ShardedStore

__all__ = ["ShardScanReport", "shard_parallel_evaluate"]

Answer = Tuple[Constant, ...]


@dataclass
class ShardScanReport:
    """Answers plus the per-shard work profile of one evaluation."""

    answers: Set[Answer]
    shards: int
    workers: int
    per_shard_matches: List[int] = field(default_factory=list)

    @property
    def total_matches(self) -> int:
        return sum(self.per_shard_matches)

    @property
    def skew(self) -> float:
        """Largest shard's share of the matches (1/shards is perfect)."""
        total = self.total_matches
        if not total:
            return 0.0
        return max(self.per_shard_matches) / total


def _pin_index(query: ConjunctiveQuery) -> int:
    """Which body atom to fan out on: the most selective one.

    Most ground arguments first (those become bound positions of the
    shard probe), widest atom as tie-break (more seed bindings for the
    remaining join), string form for determinism — the same ordering
    heuristic the backtracking join itself uses.
    """
    return max(
        range(len(query.atoms)),
        key=lambda i: (
            sum(
                1
                for t in query.atoms[i].args
                if not isinstance(t, Variable)
            ),
            len(query.atoms[i].args),
            str(query.atoms[i]),
        ),
    )


def _seed_for(pinned: Atom, stored: Atom) -> Optional[Dict[Variable, Term]]:
    """Bindings mapping *pinned* onto *stored*, or None on a repeated-
    variable clash (the shard probe only checks ground positions)."""
    seed: Dict[Variable, Term] = {}
    for p_term, s_term in zip(pinned.args, stored.args):
        if isinstance(p_term, Variable):
            bound = seed.get(p_term)
            if bound is not None and bound != s_term:
                return None
            seed[p_term] = s_term
        elif p_term != s_term:
            return None
    return seed


def shard_parallel_evaluate(
    query: ConjunctiveQuery,
    store: ShardedStore,
    *,
    workers: int = 4,
    report: bool = False,
):
    """``q(store)`` with one concurrent scan-and-join task per shard.

    Equals :meth:`ConjunctiveQuery.evaluate` on the same store (the
    property suite asserts it).  Falls back to the sequential
    evaluation for stores without shard structure, so callers may pass
    whatever backend the plan selected.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if not isinstance(store, ShardedStore):
        answers = query.evaluate(store)
        if report:
            return ShardScanReport(
                answers=answers, shards=0, workers=workers
            )
        return answers

    pin = _pin_index(query)
    pinned = query.atoms[pin]
    rest = list(query.atoms[:pin] + query.atoms[pin + 1:])
    bound = {
        i: term
        for i, term in enumerate(pinned.args, start=1)
        if not isinstance(term, Variable)
    }
    tasks = store.probe_shards(pinned.predicate, bound, arity=pinned.arity)

    def scan_shard(task) -> Tuple[Set[Answer], int]:
        found: Set[Answer] = set()
        matches = task()
        for stored in matches:
            seed = _seed_for(pinned, stored)
            if seed is None:
                continue
            if not rest:
                image = tuple(seed.get(v, v) for v in query.output)
                if all(isinstance(t, Constant) for t in image):
                    found.add(image)
                continue
            for hom in homomorphisms(rest, store, seed):
                image = tuple(hom.apply_term(v) for v in query.output)
                if all(isinstance(t, Constant) for t in image):
                    found.add(image)
        return found, len(matches)

    answers: Set[Answer] = set()
    per_shard: List[int] = []
    if tasks:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for found, matches in pool.map(scan_shard, tasks):
                answers.update(found)
                per_shard.append(matches)

    if report:
        return ShardScanReport(
            answers=answers,
            shards=len(tasks),
            workers=workers,
            per_shard_matches=per_shard,
        )
    return answers
