"""Pull-based answer streams.

An :class:`AnswerStream` is the result type of the session layer: a
lazy, replayable iterator of certain-answer tuples.  The underlying
engine generator is driven only as far as the consumer pulls, so the
first answers surface before the full certain-answer set is
materialized; consumed tuples are cached, so repeated iteration,
:meth:`AnswerStream.to_set`, and partial reads all agree.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..core.terms import Constant

__all__ = ["AnswerStream", "StreamStats"]

AnswerTuple = Tuple[Constant, ...]


@dataclass
class StreamStats:
    """Execution statistics, filled in as the stream is driven.

    ``probe_answers``/``decided_tuples`` mirror the legacy
    :class:`~repro.reasoning.answers.AnswerReport` fields (proof-tree
    engines only); ``saturated`` reports fixpoint completion for the
    materializing engines; ``from_cache`` marks a session cache hit
    (a reused materialization — no engine run at all).  ``rounds``
    counts semi-naive fixpoint rounds (datalog engine) and ``events``
    counts engine steps — chase trigger firings or operator-network
    delta events — so the benchmark harness can report work per cell
    without re-running the engine.  ``rewrite`` is the plan's resolved
    demand dimension (``"magic"`` or ``"none"``) and ``derived`` the
    facts the datalog engine staged beyond the seeded database — the
    pair the demand benchmark compares across plans.  ``exec_mode`` is
    the exec dimension the datalog engine actually ran
    (``"kernel"``/``"interpret"``; empty for other engines and cache
    hits) and ``kernel_batches`` the number of batch operations the
    compiled kernels executed (0 under the interpreter).  ``wall_ms`` is
    the cumulative wall-clock time spent driving the engine (pull time
    only — construction and idle time between pulls are excluded), and
    ``snapshot_version`` the EDB version the query was admitted under
    (filled by the serving layer; None for plain library streams) —
    together they let client-observed latency and server-side stats
    reconcile per response.
    """

    method: str = ""
    probe_answers: int = 0
    decided_tuples: int = 0
    rounds: int = 0
    events: int = 0
    derived: int = 0
    rewrite: str = "none"
    exec_mode: str = ""
    kernel_batches: int = 0
    saturated: Optional[bool] = None
    from_cache: bool = False
    wall_ms: float = 0.0
    snapshot_version: Optional[int] = None

    def as_dict(self) -> dict:
        """A JSON-ready rendering (used by the server protocol)."""
        return asdict(self)


class AnswerStream:
    """A lazy stream of certain-answer tuples.

    Iteration pulls tuples from the engine generator on demand; the
    stream never runs the engine further than requested.  Soundness
    holds at every prefix (every yielded tuple is a certain answer);
    completeness — the materialized set equalling ``cert(q, D, Σ)`` —
    holds on normal exhaustion.  An engine that cannot certify
    completeness (e.g. a strict chase that failed to saturate) raises
    at the *end* of the stream, after its sound prefix.
    """

    def __init__(
        self,
        plan,
        factory: Callable[[], Iterable[AnswerTuple]],
        stats: Optional[StreamStats] = None,
    ):
        self._plan = plan
        self._factory = factory
        self._iterator: Optional[Iterator[AnswerTuple]] = None
        self._cache: List[AnswerTuple] = []
        self._exhausted = False
        self._error: Optional[BaseException] = None
        self._release_hooks: List[Callable[[], None]] = []
        self._released = False
        self._closed = False
        self.stats = stats if stats is not None else StreamStats(
            method=getattr(plan, "method", "")
        )

    # -- introspection -----------------------------------------------------

    @property
    def plan(self):
        """The :class:`~repro.api.planner.QueryPlan` being executed."""
        return self._plan

    @property
    def method(self) -> str:
        return self._plan.method

    @property
    def started(self) -> bool:
        """True once the engine generator has been constructed."""
        return self._iterator is not None

    @property
    def exhausted(self) -> bool:
        """True once the engine has been drained (the set is complete)."""
        return self._exhausted

    def explain(self) -> str:
        return self._plan.explain()

    def __repr__(self) -> str:
        state = (
            "complete"
            if self._exhausted
            else ("started" if self.started else "pending")
        )
        return (
            f"AnswerStream({self.method}, {len(self._cache)} pulled, {state})"
        )

    # -- pulling -----------------------------------------------------------

    def _pull(self) -> bool:
        """Advance the engine by one tuple; False when drained.

        Each pull's wall-clock time accrues to ``stats.wall_ms``, so a
        drained stream's total equals the engine time the caller
        actually paid (idle time between pulls is not charged).
        """
        if self._error is not None:
            raise self._error
        if self._exhausted or self._closed:
            return False
        started = time.perf_counter()
        try:
            if self._iterator is None:
                self._iterator = iter(self._factory())
            try:
                item = next(self._iterator)
            except StopIteration:
                self._exhausted = True
                self._run_release_hooks()
                return False
            except BaseException as error:
                self._error = error
                self._run_release_hooks()
                raise
        finally:
            self.stats.wall_ms += (time.perf_counter() - started) * 1000.0
        self._cache.append(item)
        return True

    # -- resource management -----------------------------------------------

    def on_release(self, hook: Callable[[], None]) -> None:
        """Register a cleanup hook, run exactly once when the stream is
        done with its underlying resources — on engine exhaustion, on an
        engine error, or on an explicit :meth:`close`.

        The serving layer uses this to release the snapshot lease a
        query was admitted under: the version's refcount drops when the
        last reader drains, letting the snapshot manager collect it.
        Hooks registered after release run immediately.
        """
        if self._released:
            hook()
            return
        self._release_hooks.append(hook)

    def _run_release_hooks(self) -> None:
        if self._released:
            return
        self._released = True
        hooks, self._release_hooks = self._release_hooks, []
        for hook in hooks:
            hook()

    def close(self) -> None:
        """Stop the engine without draining it.

        The cached prefix stays replayable (iteration over consumed
        tuples still works); further pulls are refused, and the release
        hooks run.  Closing an exhausted or unstarted stream is a no-op
        beyond releasing.
        """
        if not self._exhausted and self._error is None:
            iterator = self._iterator
            if iterator is not None and hasattr(iterator, "close"):
                iterator.close()
            self._closed = True
        self._run_release_hooks()

    def __iter__(self) -> Iterator[AnswerTuple]:
        index = 0
        while True:
            while index < len(self._cache):
                yield self._cache[index]
                index += 1
            if not self._pull():
                return

    def first(self, n: int = 1) -> List[AnswerTuple]:
        """The first *n* answers, driving the engine no further."""
        while len(self._cache) < n and self._pull():
            pass
        return self._cache[:n]

    def to_set(self) -> frozenset:
        """Drain the stream and return the full certain-answer set."""
        while self._pull():
            pass
        return frozenset(self._cache)

    def to_sorted(self) -> List[AnswerTuple]:
        """Drain the stream; answers sorted by string form."""
        return sorted(self.to_set(), key=str)

    def count(self) -> int:
        """``|cert(q, D, Σ)|`` (drains the stream)."""
        return len(self.to_set())
