"""The session: one front door for compile-once, query-many workloads.

A :class:`Session` owns

* the **EDB** — a shared fact base, extended by loaded programs and
  :meth:`Session.add_facts`;
* a **store choice** — the fact-storage backend every materializing
  engine uses (see :data:`repro.storage.BACKENDS`);
* a **compiled-program cache** — each :class:`Program` is classified,
  stratified, and join-planned exactly once;
* cross-query caches — star abstractions (proof-tree engines) and
  saturated materializations (fixpoint engines), each stamped with the
  EDB version watermark it is valid for;
* a **mutation log** — :meth:`Session.apply` records every effective
  insert/retract batch and routes each cached materialization through
  :mod:`repro.incremental`, *upgrading it in place* (DRed + counting +
  the semi-naive insertion fast path) instead of recomputing, with a
  recorded fallback for plans outside the maintainable fragment.

``Session.query`` returns a lazy :class:`AnswerStream`; nothing runs
until the caller pulls.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from ..core.atoms import Atom
from ..core.instance import Database, Instance
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..incremental import (
    ChangeSet,
    FixpointMaintainer,
    MaintenanceReport,
    MutationLog,
    compose_changes,
    unmaintainable_reason,
)
from ..lang.parser import parse_program, parse_query
from ..lint import LintError
from ..rewriting.magic import (
    AdornedProgram,
    MagicRewriting,
    adorn_program,
    binding_pattern,
)
from ..storage import FactStore
from .execution import execute_plan
from .planner import Planner, QueryPlan, validate_store
from .program import CompiledProgram, compile_program
from .stream import AnswerStream

__all__ = ["Session", "fixpoint_cacheable", "fixpoint_cache_key"]

QueryLike = Union[str, ConjunctiveQuery]
ProgramLike = Union[None, str, Program, CompiledProgram]
ChangeLike = Union[ChangeSet, Iterable[Atom]]


#: engine kwargs whose values are plain data — a plan whose kwargs
#: stay inside this set has cacheable, key-comparable semantics.
CACHEABLE_KWARGS = frozenset(
    {
        "variant",
        "max_atoms",
        "max_steps",
        "max_events",
        "max_rounds",
        "strict",
        "probe_depth",
        "probe_atoms",
    }
)


def fixpoint_cacheable(plan: QueryPlan) -> bool:
    """Whether *plan*'s saturated materialization may be cached/reused.

    Live collaborators (termination policies, guides, custom null
    factories, oracles) can suppress or alter derivations without
    marking the run unsaturated — such runs must never be served to,
    or taken from, a shared fixpoint cache.  Used by both the session's
    cache and the server's per-snapshot-version caches.
    """
    return all(key in CACHEABLE_KWARGS for key in plan.engine_kwargs)


def fixpoint_cache_key(plan: QueryPlan) -> tuple:
    """The cache identity of *plan*'s saturated materialization.

    No EDB version in the key: entries carry their own watermark and
    are moved forward by the maintainer instead of being orphaned per
    version.  Magic plans additionally key on the rewriting identity
    (binding pattern + seed constants): their materialization is
    demand-specific and must never be served to another query, or to
    the unrewritten plan.
    """
    relevant = tuple(
        sorted((k, repr(v)) for k, v in plan.engine_kwargs.items())
    )
    token = (
        plan.rewriting.cache_token if plan.rewriting is not None else None
    )
    return (
        id(plan.program),
        plan.method,
        plan.store_name,
        relevant,
        plan.rewrite,
        token,
    )


class _FixpointEntry:
    """One cached saturated materialization plus its upgrade machinery.

    ``version`` is the EDB watermark the store is saturated for;
    :meth:`Session.apply` moves it forward through the ``maintainer``
    (built lazily on the first change) instead of dropping the store.
    """

    __slots__ = (
        "store", "version", "compiled", "maintainer", "label", "rewrite"
    )

    def __init__(self, store: FactStore, version: int,
                 compiled: CompiledProgram, label: str,
                 rewrite: str = "none"):
        self.store = store
        self.version = version
        self.compiled = compiled
        self.maintainer: Optional[FixpointMaintainer] = None
        self.label = label
        self.rewrite = rewrite


class Session:
    """A reusable query-answering session over a shared EDB."""

    def __init__(self, *, store="instance", planner: Optional[Planner] = None):
        validate_store(store)
        if isinstance(store, FactStore):
            # One live store seeded in place by every engine run would
            # leak one query's materialization into the next (even
            # across programs).  Engines may take an instance directly;
            # a session needs a name or a factory.
            raise ValueError(
                "Session cannot share one FactStore instance across "
                "queries; pass a backend name or a factory callable"
            )
        self.store = store
        self.planner = planner if planner is not None else Planner()
        #: Guards the EDB, the mutation log, and every cross-query
        #: cache: a session may be shared across threads (the serving
        #: layer plans queries and applies change batches concurrently).
        #: Reentrant because ``load`` → ``add_facts`` → ``apply`` nest.
        self._lock = threading.RLock()
        self.edb = Database()
        self._edb_version = 0
        self.mutations = MutationLog()
        self._compiled: Dict[Program, CompiledProgram] = {}
        self._external: list = []  # externally compiled, kept alive
        self._last: Optional[CompiledProgram] = None
        self._abstractions: Dict[Tuple[int, int], Instance] = {}
        #: Adorned demand programs, cached per (compiled program,
        #: binding pattern): two point queries differing only in their
        #: constants share one rewriting and differ only in seed facts.
        #: LRU-bounded like the magic fixpoint cache — binding patterns
        #: are structural, but programmatically generated query shapes
        #: would otherwise grow it without limit.
        self._adorned: Dict[tuple, AdornedProgram] = {}
        self._fixpoints: Dict[tuple, _FixpointEntry] = {}
        #: Reports from *lazy* catch-ups (a lagging entry healed — or
        #: dropped, with the reason — on the read path); :meth:`apply`
        #: returns its report directly instead.  Bounded, newest last.
        self.catchup_reports: list[MaintenanceReport] = []

    def __repr__(self) -> str:
        return (
            f"Session(store={self.store!r}, {len(self.edb)} facts, "
            f"{len(self._compiled)} program(s) compiled)"
        )

    # -- EDB management ----------------------------------------------------

    @property
    def edb_version(self) -> int:
        """The EDB change-log watermark: bumped once per effective
        :meth:`apply` batch.  Derived caches are stamped with the
        watermark they are valid for and *upgraded* across bumps when
        the program is maintainable (recomputed otherwise)."""
        return self._edb_version

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        """Add facts to the shared EDB (an insert-only :meth:`apply`).

        Cached fixpoints of maintainable programs are upgraded in
        place via the insertion fast path; star abstractions (which
        are cheap relative to saturation) are recomputed.  Returns how
        many facts were new.
        """
        return self.apply(ChangeSet.inserting(atoms)).added

    def retract_facts(self, atoms: Iterable[Atom]) -> int:
        """Remove facts from the shared EDB (a retract-only :meth:`apply`).

        Returns how many facts were actually present.
        """
        return self.apply(ChangeSet.retracting(atoms)).dropped

    def apply(
        self,
        changes: ChangeLike = None,
        *,
        inserts: Iterable[Atom] = (),
        retracts: Iterable[Atom] = (),
    ) -> MaintenanceReport:
        """Apply one batch of EDB insertions and retractions.

        *changes* is a :class:`~repro.incremental.ChangeSet` (or a bare
        iterable of atoms, treated as insertions); ``inserts=`` /
        ``retracts=`` extend it.  Every cached ``(plan, fixpoint)`` is
        routed through its :class:`~repro.incremental.FixpointMaintainer`
        and upgraded in place — DRed / counting deletion plus the
        semi-naive insertion fast path — while plans outside the
        maintainable fragment fall back to recomputation-on-next-query,
        with the reason recorded in the returned
        :class:`~repro.incremental.MaintenanceReport`.

        No-op batches (nothing effectively changed) do not bump the
        watermark.
        """
        if changes is None:
            changes = ChangeSet()
        elif not isinstance(changes, ChangeSet):
            changes = ChangeSet.inserting(changes)
        extra = ChangeSet.of(inserts, retracts)
        if extra:
            changes = ChangeSet(changes.ops + extra.ops)
        with self._lock:
            net_inserts, net_retracts = changes.net()
            # Effective deltas relative to the current EDB: re-asserting
            # a present fact and retracting an absent one are no-ops.
            inserted = tuple(f for f in net_inserts if f not in self.edb)
            retracted = tuple(f for f in net_retracts if f in self.edb)
            if not inserted and not retracted:
                return MaintenanceReport(
                    version=self._edb_version, inserted=(), retracted=()
                )
            self.edb.discard_all(retracted)
            self.edb.add_all(inserted)
            self._edb_version += 1
            self.mutations.record(self._edb_version, inserted, retracted)
            # Star abstractions depend on the whole EDB and are cheap
            # next to saturation: recompute on demand, don't maintain.
            self._abstractions.clear()
            report = MaintenanceReport(
                version=self._edb_version,
                inserted=inserted,
                retracted=retracted,
            )
            for key in list(self._fixpoints):
                self._upgrade_entry(key, report)
            return report

    def _upgrade_entry(self, key: tuple, report: MaintenanceReport) -> None:
        """Bring one cached fixpoint to the current watermark, or drop it.

        The entry may be several versions behind (defensive — e.g. a
        caller that mutated ``session.edb`` directly bumped nothing);
        the mutation log composes the missed batches into one effective
        batch, which stays exact for both DRed and counting.
        """
        entry = self._fixpoints[key]
        if entry.rewrite == "magic":
            # A magic materialization is the fixpoint of the *demand*
            # program seeded from one query's constants; maintaining it
            # against the unrewritten program would silently corrupt
            # it, so the fallback is recompute-on-next-query, recorded.
            del self._fixpoints[key]
            report.fallbacks.append(
                (
                    entry.label,
                    "magic-rewritten fixpoint is demand-specific "
                    "(seeded from the query's constants); recomputing "
                    "on next query",
                )
            )
            return
        reason = unmaintainable_reason(entry.compiled.analysis)
        if reason is not None:
            del self._fixpoints[key]
            report.fallbacks.append((entry.label, reason))
            return
        pending = self.mutations.since(entry.version, self._edb_version)
        if pending is None:
            del self._fixpoints[key]
            report.fallbacks.append(
                (
                    entry.label,
                    "mutation log no longer covers this cache's "
                    "watermark; recomputing",
                )
            )
            return
        inserted, retracted = compose_changes(
            (record.inserted, record.retracted) for record in pending
        )
        if entry.maintainer is None:
            entry.maintainer = FixpointMaintainer(
                entry.compiled, entry.store
            )
        stats = entry.maintainer.apply(inserted, retracted, edb=self.edb)
        entry.version = self._edb_version
        report.maintained.append((entry.label, stats))

    # -- program management ------------------------------------------------

    def load(
        self, source: Union[str, Path], *, name: str = ""
    ) -> CompiledProgram:
        """Parse a program (text or path), absorb its facts, compile it.

        The returned :class:`CompiledProgram` becomes the session's
        default program for subsequent :meth:`query` calls.
        """
        if isinstance(source, Path):
            name = name or source.stem
            source = source.read_text()
        program, database = parse_program(source, name=name)
        self.add_facts(database)
        return self.compile(program, source=source, facts=database)

    def compile(
        self, program: Program, *, source: Optional[str] = None, facts=None
    ) -> CompiledProgram:
        """Compile *program* once; later calls return the cached artifact."""
        with self._lock:
            if isinstance(program, CompiledProgram):
                # Retain a strong reference: the abstraction/fixpoint
                # caches key by id(compiled), which must not be reused
                # by a new object while this session holds entries.
                self._compiled.setdefault(program.program, program)
                if self._compiled[program.program] is not program:
                    self._external.append(program)
                self._last = program
                return program
            if not isinstance(program, Program):
                program = Program(program)  # bare TGD iterables
            compiled = self._compiled.get(program)
            if compiled is None:
                compiled = compile_program(
                    program, source=source, facts=facts
                )
                self._compiled[program] = compiled
            self._last = compiled
            return compiled

    @property
    def programs(self) -> Tuple[CompiledProgram, ...]:
        return tuple(self._compiled.values())

    def _resolve_program(self, program: ProgramLike) -> CompiledProgram:
        if program is None:
            if self._last is None:
                raise ValueError(
                    "no program loaded into this session; call "
                    "Session.load()/compile() or pass program="
                )
            return self._last
        if isinstance(program, CompiledProgram):
            return self.compile(program)
        if isinstance(program, str):
            parsed, _ = parse_program(program)
            return self.compile(parsed, source=program)
        return self.compile(program)

    # -- planning and querying --------------------------------------------

    def plan(
        self,
        query: QueryLike,
        *,
        program: ProgramLike = None,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        **engine_kwargs,
    ) -> QueryPlan:
        """Plan a query without running it (see :meth:`QueryPlan.explain`).

        ``rewrite`` selects the demand dimension
        (:data:`repro.api.planner.REWRITES`); adorned demand programs
        are cached per (program, binding pattern), so repeated point
        queries pay the rewriting once.  ``exec_mode`` selects the exec
        dimension (:data:`repro.api.planner.EXEC_MODES`): compiled
        batch kernels versus the per-tuple interpreter on the datalog
        engine.  It changes *how* the fixpoint is computed, never the
        fixpoint itself, so cached materializations are shared across
        exec modes.
        """
        if isinstance(query, str):
            query = parse_query(query)
        compiled = self._resolve_program(program)
        # Static gate: a program with error-severity diagnostics —
        # unsafe negation, arity conflicts, negation through recursion —
        # has no sound evaluation, so reject it before the planner ever
        # sees it.  The report is computed once per compiled program
        # and cached (``compiled.diagnostics``); warnings and infos
        # pass through and surface on the plan's ``lint:`` line.
        errors = compiled.diagnostics.errors()
        if errors:
            raise LintError(errors, compiled.name)
        return self.planner.plan(
            compiled,
            query,
            method=method,
            store=self.store,
            rewrite=rewrite,
            exec_mode=exec_mode,
            magic_provider=self._magic_for,
            **engine_kwargs,
        )

    #: Cap on cached adorned demand programs (per binding pattern).
    _ADORNED_CACHE_LIMIT = 64

    def _magic_for(
        self, compiled: CompiledProgram, query: ConjunctiveQuery
    ) -> MagicRewriting:
        """The cached adorned program for this binding pattern,
        instantiated with the query's actual constants."""
        key = (id(compiled), binding_pattern(query))
        with self._lock:
            adorned = self._adorned.get(key)
            if adorned is None:
                adorned = adorn_program(compiled.program, query)
                self._adorned[key] = adorned
                stale_keys = list(self._adorned)[: -self._ADORNED_CACHE_LIMIT]
                for stale in stale_keys:
                    del self._adorned[stale]
            else:
                self._adorned[key] = self._adorned.pop(key)  # LRU refresh
        return adorned.instantiate(query)

    def explain(self, query: QueryLike, **plan_kwargs) -> str:
        """The stable rendering of the plan :meth:`query` would execute."""
        return self.plan(query, **plan_kwargs).explain()

    def query(
        self,
        query: QueryLike,
        *,
        program: ProgramLike = None,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        **engine_kwargs,
    ) -> AnswerStream:
        """Answer a query against the session EDB, lazily.

        Returns an :class:`AnswerStream`; the engine starts on the
        first pull, and its materialized set equals the legacy eager
        ``certain_answers`` for the same arguments (the magic rewriting
        only restricts *how much* is derived — and the exec dimension
        only *how* it is derived — never the answers).
        """
        plan = self.plan(
            query,
            program=program,
            method=method,
            rewrite=rewrite,
            exec_mode=exec_mode,
            **engine_kwargs,
        )
        return execute_plan(plan, self.edb, session=self)

    def answers(self, query: QueryLike, **query_kwargs) -> set:
        """Eager convenience: ``set(self.query(...))``."""
        return set(self.query(query, **query_kwargs).to_set())

    # -- cross-query caches ------------------------------------------------

    def abstraction_for(self, compiled: CompiledProgram) -> Instance:
        """The star abstraction of (EDB, Σ), computed once per EDB version.

        It both bounds the candidate answer pools and serves as the
        pruning oracle of the proof-tree engines, and depends only on
        the facts and the program — never on the query.
        """
        from ..reasoning.abstraction import star_abstraction

        with self._lock:
            key = (id(compiled), self._edb_version)
            abstraction = self._abstractions.get(key)
            if abstraction is None:
                abstraction = star_abstraction(
                    self.edb, compiled.analysis.normalized
                )
                self._abstractions[key] = abstraction
            return abstraction

    #: Backwards-compatible aliases of the module-level helpers (shared
    #: with the server's per-version caches).
    _CACHEABLE_KWARGS = CACHEABLE_KWARGS

    def _fixpoint_cacheable(self, plan: QueryPlan) -> bool:
        return fixpoint_cacheable(plan)

    def _fixpoint_key(self, plan: QueryPlan) -> tuple:
        return fixpoint_cache_key(plan)

    #: Cap on *demand-specific* (magic) fixpoint entries: their cache
    #: key includes the query's seed constants, so a read-heavy session
    #: answering many distinct point queries would otherwise grow one
    #: materialization per constant without bound.  Unrewritten entries
    #: stay unbounded — their key space is the small (program, method,
    #: store, kwargs) product.
    _MAGIC_FIXPOINT_LIMIT = 32

    def get_fixpoint(self, plan: QueryPlan) -> Optional[FactStore]:
        """A cached saturated materialization for this plan, if any.

        An entry whose watermark lags the EDB (possible only when the
        EDB was mutated without :meth:`apply` noticing, e.g. direct
        ``session.edb`` writes recorded by a later batch) is caught up
        through the maintainer on the way out, or dropped.
        """
        if not self._fixpoint_cacheable(plan):
            return None
        with self._lock:
            key = self._fixpoint_key(plan)
            entry = self._fixpoints.get(key)
            if entry is None:
                return None
            if entry.rewrite == "magic":
                # LRU refresh: magic entries are evicted oldest-first
                # when the demand cache exceeds its cap.
                self._fixpoints[key] = self._fixpoints.pop(key)
            if entry.version != self._edb_version:
                report = MaintenanceReport(
                    version=self._edb_version, inserted=(), retracted=()
                )
                self._upgrade_entry(self._fixpoint_key(plan), report)
                # Keep the decision discoverable — especially a
                # fallback's reason — rather than silently recomputing.
                self.catchup_reports.append(report)
                del self.catchup_reports[:-32]
                entry = self._fixpoints.get(self._fixpoint_key(plan))
                if entry is None:
                    return None
            return entry.store

    def set_fixpoint(self, plan: QueryPlan, instance: FactStore) -> None:
        """Register a saturated materialization for reuse."""
        if not self._fixpoint_cacheable(plan):
            return
        tag = "×magic" if plan.rewrite == "magic" else ""
        label = (
            f"{plan.method}×{plan.store_name}{tag} fixpoint "
            f"[{plan.program.name}]"
        )
        with self._lock:
            self._fixpoints[self._fixpoint_key(plan)] = _FixpointEntry(
                instance, self._edb_version, plan.program, label,
                rewrite=plan.rewrite,
            )
            if plan.rewrite == "magic":
                magic_keys = [
                    key
                    for key, entry in self._fixpoints.items()
                    if entry.rewrite == "magic"
                ]
                for key in magic_keys[: -self._MAGIC_FIXPOINT_LIMIT]:
                    del self._fixpoints[key]
