"""The session: one front door for compile-once, query-many workloads.

A :class:`Session` owns

* the **EDB** — a shared fact base, extended by loaded programs and
  :meth:`Session.add_facts`;
* a **store choice** — the fact-storage backend every materializing
  engine uses (see :data:`repro.storage.BACKENDS`);
* a **compiled-program cache** — each :class:`Program` is classified,
  stratified, and join-planned exactly once;
* cross-query caches — star abstractions (proof-tree engines) and
  saturated materializations (fixpoint engines), both keyed by the EDB
  version so fact updates invalidate them.

``Session.query`` returns a lazy :class:`AnswerStream`; nothing runs
until the caller pulls.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from ..core.atoms import Atom
from ..core.instance import Database, Instance
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..lang.parser import parse_program, parse_query
from ..storage import FactStore
from .execution import execute_plan
from .planner import Planner, QueryPlan, validate_store
from .program import CompiledProgram, compile_program
from .stream import AnswerStream

__all__ = ["Session"]

QueryLike = Union[str, ConjunctiveQuery]
ProgramLike = Union[None, str, Program, CompiledProgram]


class Session:
    """A reusable query-answering session over a shared EDB."""

    def __init__(self, *, store="instance", planner: Optional[Planner] = None):
        validate_store(store)
        if isinstance(store, FactStore):
            # One live store seeded in place by every engine run would
            # leak one query's materialization into the next (even
            # across programs).  Engines may take an instance directly;
            # a session needs a name or a factory.
            raise ValueError(
                "Session cannot share one FactStore instance across "
                "queries; pass a backend name or a factory callable"
            )
        self.store = store
        self.planner = planner if planner is not None else Planner()
        self.edb = Database()
        self._edb_version = 0
        self._compiled: Dict[Program, CompiledProgram] = {}
        self._external: list = []  # externally compiled, kept alive
        self._last: Optional[CompiledProgram] = None
        self._abstractions: Dict[Tuple[int, int], Instance] = {}
        self._fixpoints: Dict[tuple, FactStore] = {}

    def __repr__(self) -> str:
        return (
            f"Session(store={self.store!r}, {len(self.edb)} facts, "
            f"{len(self._compiled)} program(s) compiled)"
        )

    # -- EDB management ----------------------------------------------------

    @property
    def edb_version(self) -> int:
        """Bumped whenever facts are added; keys the derived caches."""
        return self._edb_version

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        """Add facts to the shared EDB, invalidating derived caches."""
        added = self.edb.add_all(atoms)
        if added:
            self._edb_version += 1
            self._abstractions.clear()
            self._fixpoints.clear()
        return added

    # -- program management ------------------------------------------------

    def load(
        self, source: Union[str, Path], *, name: str = ""
    ) -> CompiledProgram:
        """Parse a program (text or path), absorb its facts, compile it.

        The returned :class:`CompiledProgram` becomes the session's
        default program for subsequent :meth:`query` calls.
        """
        if isinstance(source, Path):
            name = name or source.stem
            source = source.read_text()
        program, database = parse_program(source, name=name)
        self.add_facts(database)
        return self.compile(program, source=source)

    def compile(
        self, program: Program, *, source: Optional[str] = None
    ) -> CompiledProgram:
        """Compile *program* once; later calls return the cached artifact."""
        if isinstance(program, CompiledProgram):
            # Retain a strong reference: the abstraction/fixpoint caches
            # key by id(compiled), which must not be reused by a new
            # object while this session holds entries for it.
            self._compiled.setdefault(program.program, program)
            if self._compiled[program.program] is not program:
                self._external.append(program)
            self._last = program
            return program
        if not isinstance(program, Program):
            program = Program(program)  # bare TGD iterables
        compiled = self._compiled.get(program)
        if compiled is None:
            compiled = compile_program(program, source=source)
            self._compiled[program] = compiled
        self._last = compiled
        return compiled

    @property
    def programs(self) -> Tuple[CompiledProgram, ...]:
        return tuple(self._compiled.values())

    def _resolve_program(self, program: ProgramLike) -> CompiledProgram:
        if program is None:
            if self._last is None:
                raise ValueError(
                    "no program loaded into this session; call "
                    "Session.load()/compile() or pass program="
                )
            return self._last
        if isinstance(program, CompiledProgram):
            return self.compile(program)
        if isinstance(program, str):
            parsed, _ = parse_program(program)
            return self.compile(parsed, source=program)
        return self.compile(program)

    # -- planning and querying --------------------------------------------

    def plan(
        self,
        query: QueryLike,
        *,
        program: ProgramLike = None,
        method: str = "auto",
        **engine_kwargs,
    ) -> QueryPlan:
        """Plan a query without running it (see :meth:`QueryPlan.explain`)."""
        if isinstance(query, str):
            query = parse_query(query)
        compiled = self._resolve_program(program)
        return self.planner.plan(
            compiled, query, method=method, store=self.store, **engine_kwargs
        )

    def explain(self, query: QueryLike, **plan_kwargs) -> str:
        """The stable rendering of the plan :meth:`query` would execute."""
        return self.plan(query, **plan_kwargs).explain()

    def query(
        self,
        query: QueryLike,
        *,
        program: ProgramLike = None,
        method: str = "auto",
        **engine_kwargs,
    ) -> AnswerStream:
        """Answer a query against the session EDB, lazily.

        Returns an :class:`AnswerStream`; the engine starts on the
        first pull, and its materialized set equals the legacy eager
        ``certain_answers`` for the same arguments.
        """
        plan = self.plan(
            query, program=program, method=method, **engine_kwargs
        )
        return execute_plan(plan, self.edb, session=self)

    def answers(self, query: QueryLike, **query_kwargs) -> set:
        """Eager convenience: ``set(self.query(...))``."""
        return set(self.query(query, **query_kwargs).to_set())

    # -- cross-query caches ------------------------------------------------

    def abstraction_for(self, compiled: CompiledProgram) -> Instance:
        """The star abstraction of (EDB, Σ), computed once per EDB version.

        It both bounds the candidate answer pools and serves as the
        pruning oracle of the proof-tree engines, and depends only on
        the facts and the program — never on the query.
        """
        from ..reasoning.abstraction import star_abstraction

        key = (id(compiled), self._edb_version)
        abstraction = self._abstractions.get(key)
        if abstraction is None:
            abstraction = star_abstraction(
                self.edb, compiled.analysis.normalized
            )
            self._abstractions[key] = abstraction
        return abstraction

    #: engine kwargs whose values are plain data — a plan whose kwargs
    #: stay inside this set has cacheable, key-comparable semantics.
    _CACHEABLE_KWARGS = frozenset(
        {
            "variant",
            "max_atoms",
            "max_steps",
            "max_events",
            "max_rounds",
            "strict",
            "probe_depth",
            "probe_atoms",
        }
    )

    def _fixpoint_cacheable(self, plan: QueryPlan) -> bool:
        """Live collaborators (termination policies, guides, custom null
        factories, oracles) can suppress or alter derivations without
        marking the run unsaturated — such runs must never be served to,
        or taken from, the shared fixpoint cache."""
        return all(
            key in self._CACHEABLE_KWARGS for key in plan.engine_kwargs
        )

    def _fixpoint_key(self, plan: QueryPlan) -> tuple:
        relevant = tuple(
            sorted(
                (k, repr(v)) for k, v in plan.engine_kwargs.items()
            )
        )
        return (
            id(plan.program),
            self._edb_version,
            plan.method,
            plan.store_name,
            relevant,
        )

    def get_fixpoint(self, plan: QueryPlan) -> Optional[FactStore]:
        """A cached saturated materialization for this plan, if any."""
        if not self._fixpoint_cacheable(plan):
            return None
        return self._fixpoints.get(self._fixpoint_key(plan))

    def set_fixpoint(self, plan: QueryPlan, instance: FactStore) -> None:
        """Register a saturated materialization for reuse."""
        if not self._fixpoint_cacheable(plan):
            return
        self._fixpoints[self._fixpoint_key(plan)] = instance
