"""Compile-once program artifacts.

A :class:`CompiledProgram` runs the front-half of the pipeline — parse
(done by the caller), normalize, **classify**, **stratify**, **plan** —
exactly once and keeps the results for every subsequent query.  The
legacy entry points recomputed this per call; the planner and the
session layer read it from here instead.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..analysis.levels import max_level, predicate_levels
from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..core.program import Program
from ..core.tgd import TGD
from ..datalog.strata import Strata, compute_strata
from ..engine.optimizer import JoinOptimizer, JoinPlan
from ..lint import FactSummary, ProgramDiagnostics, run_lint

__all__ = ["CompiledProgram", "ProgramAnalysis", "compile_program"]


class ProgramAnalysis:
    """The classification/stratification record of one program.

    Immutable snapshot: class memberships (driving engine dispatch),
    predicate levels, and the PWL strata.  Produced once per
    :class:`CompiledProgram`.
    """

    __slots__ = (
        "normalized",
        "full",
        "single_head",
        "warded",
        "piecewise_linear",
        "levels",
        "max_level",
        "strata",
    )

    def __init__(self, program: Program):
        self.normalized = (
            program if program.is_single_head() else program.single_head()
        )
        self.full = program.is_full()
        self.single_head = program.is_single_head()
        self.warded = is_warded(program)
        self.piecewise_linear = is_piecewise_linear(program)
        self.levels: Mapping[str, int] = predicate_levels(self.normalized)
        self.max_level = max_level(self.normalized)
        self.strata: Strata = compute_strata(self.normalized)

    @property
    def program_class(self) -> str:
        """The paper-language class label used in plan explanations."""
        if self.full and self.single_head:
            return "Datalog"
        if self.warded and self.piecewise_linear:
            return "WARD ∩ PWL"
        if self.warded:
            return "WARD"
        return "beyond WARD"


class CompiledProgram:
    """A program plus everything derivable from it alone.

    Construction is cheap; the analysis (classification, levels,
    strata), the lint report, and the per-rule join plans are computed
    lazily, each exactly once, and shared by every query planned
    against this object.  ``analysis_runs`` counts how many times the
    analysis actually executed — the compile-once guarantee is testable
    as ``analysis_runs == 1`` after any number of queries — and
    ``lint_runs`` gives the same guarantee for the lint passes.

    ``facts`` (the program's parsed database, or a pre-built
    :class:`~repro.lint.FactSummary`) enables the EDB-aware lint
    passes; only the compact summary is retained, never the facts.
    """

    def __init__(
        self,
        program: Program,
        *,
        name: str = "",
        source: Optional[str] = None,
        facts=None,
    ):
        if not isinstance(program, Program):
            program = Program(program)  # legacy callers pass bare TGD lists
        self.program = program
        self.name = name or program.name or "program"
        self.source = source
        if facts is not None and not isinstance(facts, FactSummary):
            facts = FactSummary.from_facts(facts)
        self.fact_summary: Optional[FactSummary] = facts
        self.analysis_runs = 0
        self.lint_runs = 0
        self._analysis: Optional[ProgramAnalysis] = None
        self._diagnostics: Optional[ProgramDiagnostics] = None
        self._optimizer: Optional[JoinOptimizer] = None
        self._join_plans: Dict[TGD, JoinPlan] = {}
        self._default_network = None

    def __repr__(self) -> str:
        analyzed = "analyzed" if self._analysis is not None else "unanalyzed"
        return (
            f"CompiledProgram({self.name!r}, {len(self.program)} rules, "
            f"{analyzed})"
        )

    @property
    def rules(self) -> int:
        return len(self.program)

    @property
    def analysis(self) -> ProgramAnalysis:
        """Classification + stratification, computed on first access only."""
        if self._analysis is None:
            self.analysis_runs += 1
            self._analysis = ProgramAnalysis(self.program)
        return self._analysis

    @property
    def diagnostics(self) -> ProgramDiagnostics:
        """The static lint report, computed on first access only.

        Every consumer — the session's pre-planning gate, the plan's
        ``lint:`` explain line, the CLI, the server's ``lint`` op —
        reads this one cached report; ``lint_runs`` stays 1 no matter
        how many queries touch the program.
        """
        if self._diagnostics is None:
            self.lint_runs += 1
            self._diagnostics = run_lint(
                self.program, facts=self.fact_summary
            )
        return self._diagnostics

    # -- join planning (the operator-network half of "plan once") ---------

    @property
    def optimizer(self) -> JoinOptimizer:
        if self._optimizer is None:
            self._optimizer = JoinOptimizer(self.analysis.normalized)
        return self._optimizer

    def join_plan(self, tgd: TGD) -> JoinPlan:
        """The optimizer's join order for one rule, memoized."""
        plan = self._join_plans.get(tgd)
        if plan is None:
            plan = self.optimizer.plan(tgd)
            self._join_plans[tgd] = plan
        return plan

    def network(self, *, guide=None, null_factory=None):
        """An :class:`~repro.engine.operators.OperatorNetwork` over this
        program, sharing the compiled optimizer (join orders planned
        once).  The guide-less default network is itself cached."""
        from ..engine.operators import OperatorNetwork

        if guide is None and null_factory is None:
            if self._default_network is None:
                self._default_network = OperatorNetwork(
                    self.analysis.normalized, optimizer=self.optimizer
                )
            return self._default_network
        return OperatorNetwork(
            self.analysis.normalized,
            optimizer=self.optimizer,
            guide=guide,
            null_factory=null_factory,
        )


def compile_program(
    program: Program,
    *,
    name: str = "",
    source: Optional[str] = None,
    facts=None,
) -> CompiledProgram:
    """Compile *program* (idempotent on an already compiled argument)."""
    if isinstance(program, CompiledProgram):
        return program
    return CompiledProgram(program, name=name, source=source, facts=facts)
