"""Plan execution: one dispatcher from :class:`QueryPlan` to a lazy
:class:`AnswerStream`.

Every engine is driven through its streaming core
(:func:`~repro.datalog.seminaive.stream_datalog_answers`,
:func:`~repro.chase.runner.stream_chase_answers`,
:func:`~repro.reasoning.answers.stream_proof_tree_answers`,
:meth:`~repro.engine.operators.OperatorNetwork.stream`), so answers
surface as they are derived.  When a :class:`~repro.api.session.Session`
is attached, saturated materializations and star abstractions are
reused across queries instead of recomputed.
"""

from __future__ import annotations

from ..chase.runner import ChaseRun, stream_chase_answers
from ..core.instance import Database
from ..core.query import stream_new_answers
from ..datalog.seminaive import stream_datalog_answers
from ..engine.operators import EngineRun
from ..reasoning.answers import (
    UnsupportedProgramError,
    stream_proof_tree_answers,
)
from .planner import QueryPlan
from .stream import AnswerStream, StreamStats

__all__ = ["execute_plan"]

#: chase budget used when the strict certain-answer semantics must
#: witness saturation (the legacy ``certain_answers`` defaults).
STRICT_CHASE_MAX_ATOMS = 200000
STRICT_CHASE_MAX_STEPS = 400000

_NOT_SATURATED = (
    "the chase did not terminate within the limits and the "
    "program is outside WARD; certain answers cannot be "
    "computed exactly (cf. Theorem 5.1: CQAns(PWL) alone is "
    "undecidable)"
)

#: Worker pool used when a cached fixpoint lives in a sharded store —
#: shard scans are independent, so the cache-hit path fans them out.
SHARD_SCAN_WORKERS = 4


def _evaluate_fixpoint(query, cached):
    """``q(cached)`` for a cache hit, shard-parallel when possible.

    A sharded materialization may be partially spilled; the per-shard
    tasks decode each page once in a worker instead of funneling every
    row through one sequential scan.  Answers are identical to
    ``query.evaluate`` either way (the shard fan-out partitions the
    homomorphism space exactly).
    """
    from ..storage.sharded import ShardedStore

    if isinstance(cached, ShardedStore):
        from ..parallel.shardscan import shard_parallel_evaluate

        return shard_parallel_evaluate(
            query, cached, workers=SHARD_SCAN_WORKERS
        )
    return query.evaluate(cached)


def _stream_network_answers(query, database, network, *, store, run,
                            max_atoms=None, max_events=None):
    """Delta-evaluate *query* over the operator network's event stream."""
    yield from stream_new_answers(
        query,
        network.stream(
            database, store=store, max_atoms=max_atoms,
            max_events=max_events, run=run,
        ),
        lambda event: event.new_atoms,
    )


def execute_plan(
    plan: QueryPlan, database: Database, *, session=None
) -> AnswerStream:
    """Execute *plan* against *database*, returning a lazy stream.

    Construction does no work; the engine runs only as the stream is
    pulled.  With a *session*, the materializing engines first consult
    its fixpoint cache (a hit skips the engine entirely) and register
    their saturated result on completion, and the proof-tree engines
    reuse the session's star abstraction.
    """
    stats = StreamStats(
        method=plan.method,
        rewrite=plan.rewrite,
        exec_mode=plan.exec_mode if plan.method == "datalog" else "",
    )
    query = plan.query
    program = plan.program.program
    kwargs = dict(plan.engine_kwargs)

    if plan.method == "datalog":
        # With a magic rewriting attached, the engine runs the demand
        # program over EDB ∪ seed facts and surfaces answers through
        # the rewritten query.  ``stream_new_answers`` delta-evaluates
        # on the goal predicate only, so magic/supplementary/adorned
        # atoms never reach the answer stream.
        rewriting = plan.rewriting
        run_query = rewriting.query if rewriting is not None else query
        run_program = (
            rewriting.program if rewriting is not None else program
        )

        def factory():
            cached = session.get_fixpoint(plan) if session else None
            if cached is not None:
                stats.from_cache = True
                stats.saturated = True
                stats.exec_mode = ""  # no engine ran at all
                yield from sorted(
                    _evaluate_fixpoint(run_query, cached), key=str
                )
                return
            facts = database
            if rewriting is not None:
                # A real list, not itertools.chain: seminaive_rounds
                # iterates its database argument several times (store
                # seed, delta seed, round-0 snapshot), so the seeded
                # view must be re-iterable.  The copy is atom refs only.
                facts = list(database)
                facts.extend(rewriting.seed)
            on_fixpoint = (
                (lambda instance: session.set_fixpoint(plan, instance))
                if session
                else None
            )
            yield from stream_datalog_answers(
                run_query,
                facts,
                run_program,
                store=plan.store,
                on_fixpoint=on_fixpoint,
                stats=stats,
                exec_mode=plan.exec_mode,
            )
            stats.saturated = True

    elif plan.method == "chase":

        def factory():
            cached = session.get_fixpoint(plan) if session else None
            if cached is not None:
                stats.from_cache = True
                stats.saturated = True
                yield from sorted(
                    _evaluate_fixpoint(query, cached), key=str
                )
                return
            chase_kwargs = dict(kwargs)
            chase_kwargs.pop("probe_depth", None)
            chase_kwargs.pop("probe_atoms", None)
            strict = chase_kwargs.pop("strict", True)
            if strict:
                chase_kwargs.setdefault("max_atoms", STRICT_CHASE_MAX_ATOMS)
                chase_kwargs.setdefault("max_steps", STRICT_CHASE_MAX_STEPS)
            chase_kwargs.setdefault("variant", "restricted")
            run = ChaseRun()
            on_fixpoint = (
                (lambda instance: session.set_fixpoint(plan, instance))
                if session
                else None
            )
            yield from stream_chase_answers(
                query,
                database,
                program,
                run=run,
                on_fixpoint=on_fixpoint,
                store=plan.store,
                **chase_kwargs,
            )
            stats.saturated = run.saturated
            stats.events = run.fired
            if strict and not run.saturated:
                raise UnsupportedProgramError(_NOT_SATURATED)

    elif plan.method in ("pwl", "ward"):

        def factory():
            tree_kwargs = dict(kwargs)
            tree_kwargs.pop("strict", None)
            probe_depth = tree_kwargs.pop("probe_depth", 3)
            probe_atoms = tree_kwargs.pop("probe_atoms", 20000)
            abstraction = (
                session.abstraction_for(plan.program) if session else None
            )
            yield from stream_proof_tree_answers(
                query,
                database,
                program,
                method=plan.method,
                probe_depth=probe_depth,
                probe_atoms=probe_atoms,
                abstraction=abstraction,
                stats=stats,
                **tree_kwargs,
            )

    elif plan.method == "network":

        def factory():
            cached = session.get_fixpoint(plan) if session else None
            if cached is not None:
                stats.from_cache = True
                stats.saturated = True
                yield from sorted(
                    _evaluate_fixpoint(query, cached), key=str
                )
                return
            net_kwargs = dict(kwargs)
            net_kwargs.pop("probe_depth", None)
            net_kwargs.pop("probe_atoms", None)
            strict = net_kwargs.pop("strict", True)
            if strict:
                # Same budget discipline as the strict chase: a
                # null-inventing program must hit a limit and raise
                # rather than loop unboundedly.
                net_kwargs.setdefault("max_atoms", STRICT_CHASE_MAX_ATOMS)
                net_kwargs.setdefault("max_events", STRICT_CHASE_MAX_STEPS)
            network = plan.program.network(
                guide=net_kwargs.pop("guide", None),
                null_factory=net_kwargs.pop("null_factory", None),
            )
            run = EngineRun()
            yield from _stream_network_answers(
                query,
                database,
                network,
                store=plan.store,
                run=run,
                **net_kwargs,
            )
            stats.saturated = run.saturated
            stats.events = run.events
            if run.saturated and session is not None:
                session.set_fixpoint(plan, run.instance)
            if strict and not run.saturated:
                raise UnsupportedProgramError(_NOT_SATURATED)

    else:  # pragma: no cover — Planner validates methods
        raise ValueError(f"unknown method {plan.method!r}")

    return AnswerStream(plan, factory, stats)
