"""The public session layer — one front door to the reproduction.

The Vadalog system exposes a single query interface over a pipeline of
operators; this package is that shape for the reproduction:

* :class:`Session` — owns a fact-storage backend and a shared EDB,
  reusable across many queries; caches compiled programs, star
  abstractions, and saturated materializations;
* :class:`CompiledProgram` — parse → classify → stratify → lint → plan
  exactly once (``compiled.analysis_runs == 1`` and
  ``compiled.lint_runs == 1`` no matter how many queries run); programs
  with error-severity diagnostics are rejected at planning time with a
  :class:`~repro.lint.LintError`;
* :class:`Planner` / :class:`QueryPlan` — engine auto-dispatch as an
  inspectable artifact with a stable ``explain()``;
* :class:`AnswerStream` — a pull-based, replayable iterator of certain
  answers: first tuples surface without materializing the full set.

Quickstart::

    from repro.api import Session

    session = Session(store="columnar")
    session.load('''
        edge(a, b).  edge(b, c).
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
    ''')
    stream = session.query("q(X, Y) :- tc(X, Y).")
    print(stream.first(1))        # first answer, engine barely started
    print(sorted(stream.to_set()))  # the full certain-answer set

The legacy entry points (``certain_answers``, ``chase_answers``,
``datalog_answers``, ``chase``, ``seminaive``, ``OperatorNetwork.run``)
remain as thin wrappers over this layer.
"""

from ..lint import LintError
from .execution import execute_plan
from .planner import ENGINES, EXEC_MODES, REWRITES, Planner, QueryPlan
from .program import CompiledProgram, ProgramAnalysis, compile_program
from .session import Session
from .stream import AnswerStream, StreamStats

__all__ = [
    "LintError",
    "Session",
    "CompiledProgram",
    "ProgramAnalysis",
    "compile_program",
    "Planner",
    "QueryPlan",
    "ENGINES",
    "EXEC_MODES",
    "REWRITES",
    "AnswerStream",
    "StreamStats",
    "execute_plan",
]
