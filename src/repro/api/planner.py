"""The planner: engine selection as an inspectable artifact.

Engine dispatch used to live as ad-hoc ``if`` chains inside
``certain_answers`` (and again, slightly differently, in callers that
picked ``chase_answers`` or ``datalog_answers`` by hand).
:class:`Planner` is now the one place that decision is made; its output
is a :class:`QueryPlan` — a frozen record of *what* will run and *why*,
with a stable :meth:`QueryPlan.explain` rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Tuple

from ..core.query import ConjunctiveQuery
from ..storage import BACKENDS, FactStore
from .program import CompiledProgram, compile_program

__all__ = ["Planner", "QueryPlan", "ENGINES"]

#: Engine names a plan can resolve to (``"auto"`` is accepted as input).
ENGINES = ("datalog", "pwl", "ward", "chase", "network")

_ENGINE_LABELS = {
    "datalog": "semi-naive least fixpoint (exact for full programs)",
    "pwl": "linear proof-tree search (Theorem 4.8)",
    "ward": "AND-OR alternating proof search (Theorem 4.9)",
    "chase": "restricted chase (exact iff it saturates)",
    "network": "streaming operator network (Section 7)",
}

_PIPELINES = {
    "datalog": (
        "run the semi-naive fixpoint over the EDB",
        "after each round, delta-evaluate q on the staged facts and "
        "stream the new answers",
    ),
    "pwl": (
        "reuse (or build) the star abstraction of (D, Σ)",
        "bounded chase probe settles cheap positives — streamed first",
        "enumerate candidate tuples from the abstraction's pools",
        "decide each remaining candidate by linear proof-tree search, "
        "streaming accepted tuples",
    ),
    "ward": (
        "reuse (or build) the star abstraction of (D, Σ)",
        "bounded chase probe settles cheap positives — streamed first",
        "enumerate candidate tuples from the abstraction's pools",
        "decide each remaining candidate by AND-OR search, streaming "
        "accepted tuples",
    ),
    "chase": (
        "run the restricted chase over the EDB",
        "after each firing, delta-evaluate q on the new atoms and "
        "stream the new answers",
        "on exhaustion, require saturation (strict) or report a sound "
        "under-approximation",
    ),
    "network": (
        "push EDB atoms through the compiled rule-node network "
        "(join orders planned once)",
        "delta-evaluate q on each derived atom and stream the new "
        "answers",
    ),
}


def _store_label(store) -> str:
    if isinstance(store, str):
        return store
    if isinstance(store, FactStore):
        return type(store).__name__
    return getattr(store, "__name__", type(store).__name__)


def validate_store(store):
    """Check a ``store=`` argument, with an error that names the options."""
    if isinstance(store, str) and store not in BACKENDS:
        raise ValueError(
            f"unknown storage backend {store!r}; choose one of "
            f"{', '.join(BACKENDS)}"
        )
    return store


@dataclass(frozen=True)
class QueryPlan:
    """A resolved execution plan for one query against one program.

    Frozen and printable: ``method`` is the engine that will run,
    ``reasons`` records why the planner chose it, ``steps`` the
    pipeline the executor follows.  ``engine_kwargs`` are forwarded to
    the engine verbatim (excluded from equality — they may hold live
    objects such as oracles or policies).
    """

    query: ConjunctiveQuery
    method: str
    store: Any = field(compare=False)
    store_name: str = "instance"
    program: CompiledProgram = field(compare=False, default=None)
    reasons: Tuple[str, ...] = ()
    steps: Tuple[str, ...] = ()
    engine_kwargs: Mapping[str, Any] = field(compare=False, default_factory=dict)
    #: Whether a saturated materialization of this plan can be upgraded
    #: in place under EDB change sets (see :mod:`repro.incremental`);
    #: ``maintenance`` carries the human-readable why/why-not.  The
    #: default is the conservative "not classified" — only
    #: :meth:`Planner.plan` asserts maintainability (the session
    #: re-derives the real classification before ever maintaining).
    maintainable: bool = False
    maintenance: str = "unclassified (plan not built by Planner.plan)"

    @property
    def engine_label(self) -> str:
        return _ENGINE_LABELS[self.method]

    def explain(self) -> str:
        """A stable, human-readable rendering of the plan."""
        analysis = self.program.analysis
        lines = [
            f"plan for {self.query}",
            f"  program : {self.program.name} — "
            f"{self.program.rules} rule(s), class {analysis.program_class}, "
            f"max level {analysis.max_level}, "
            f"{len(analysis.strata.layers)} stratum/strata",
            f"  engine  : {self.method} — {self.engine_label}",
            f"  store   : {self.store_name}",
            f"  update  : {self.maintenance}",
            "  why:",
        ]
        lines.extend(f"    - {reason}" for reason in self.reasons)
        lines.append("  pipeline:")
        lines.extend(
            f"    {i}. {step}" for i, step in enumerate(self.steps, start=1)
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


class Planner:
    """Resolves (compiled program, query, method) into a :class:`QueryPlan`.

    This is the *only* place engine auto-dispatch lives: the legacy
    ``certain_answers`` and ``chase_answers`` facades both route
    through here, as does :meth:`repro.api.Session.query`.
    """

    def resolve(
        self, compiled: CompiledProgram, method: str = "auto"
    ) -> Tuple[str, Tuple[str, ...]]:
        """The engine for *compiled*, with the reasons for the choice."""
        if method != "auto":
            if method not in ENGINES:
                raise ValueError(f"unknown method {method!r}")
            return method, (f"engine {method!r} forced by the caller",)
        analysis = compiled.analysis
        if analysis.full and analysis.single_head:
            return "datalog", (
                "program is full and single-head → exact least-fixpoint "
                "evaluation",
            )
        if analysis.warded:
            if analysis.piecewise_linear:
                return "pwl", (
                    "program is warded and piece-wise linear → "
                    "space-efficient linear proof-tree search",
                )
            return "ward", (
                "program is warded but not piece-wise linear → AND-OR "
                "alternating search",
            )
        return "chase", (
            "program is outside WARD → chase, accepted only if it "
            "saturates (no complete procedure exists, Theorem 5.1)",
        )

    def plan(
        self,
        compiled: CompiledProgram,
        query: ConjunctiveQuery,
        *,
        method: str = "auto",
        store="instance",
        **engine_kwargs,
    ) -> QueryPlan:
        """Build the :class:`QueryPlan` for one query.

        ``store`` is validated against :data:`repro.storage.BACKENDS`
        when given by name.  Remaining keyword arguments are forwarded
        to the chosen engine (``probe_depth``, ``width_bound``,
        ``strict``, ``max_atoms``, ...).
        """
        compiled = compile_program(compiled)
        validate_store(store)
        resolved, reasons = self.resolve(compiled, method)
        from ..incremental import unmaintainable_reason

        gap = unmaintainable_reason(compiled.analysis)
        if gap is None and resolved in ("pwl", "ward"):
            # The proof-tree engines hold no materialization to
            # maintain; their abstraction is recomputed per EDB change.
            maintainable = False
            maintenance = (
                "recompute on EDB change (proof-tree engines cache no "
                "materialization)"
            )
        elif gap is None:
            maintainable = True
            maintenance = "incremental (DRed + counting over the strata)"
        else:
            maintainable = False
            maintenance = f"recompute on EDB change ({gap})"
        return QueryPlan(
            query=query,
            method=resolved,
            store=store,
            store_name=_store_label(store),
            program=compiled,
            reasons=reasons,
            steps=_PIPELINES[resolved],
            engine_kwargs=dict(engine_kwargs),
            maintainable=maintainable,
            maintenance=maintenance,
        )
