"""The planner: engine selection as an inspectable artifact.

Engine dispatch used to live as ad-hoc ``if`` chains inside
``certain_answers`` (and again, slightly differently, in callers that
picked ``chase_answers`` or ``datalog_answers`` by hand).
:class:`Planner` is now the one place that decision is made; its output
is a :class:`QueryPlan` — a frozen record of *what* will run and *why*,
with a stable :meth:`QueryPlan.explain` rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Tuple

from ..core.query import ConjunctiveQuery
from ..datalog.seminaive import EXEC_MODES
from ..kernels import kernel_capable
from ..rewriting.magic import MagicRewriting, magic_rewrite, query_constants
from ..storage import BACKENDS, FactStore
from .program import CompiledProgram, compile_program

__all__ = ["Planner", "QueryPlan", "ENGINES", "REWRITES", "EXEC_MODES"]

#: Engine names a plan can resolve to (``"auto"`` is accepted as input).
ENGINES = ("datalog", "pwl", "ward", "chase", "network")

#: Values of the plan's rewrite dimension (``"auto"`` applies the
#: magic-set demand transformation exactly when it pays: a full
#: program, the datalog engine, and ≥1 bound argument in the query).
REWRITES = ("auto", "magic", "none")

#: Store names whose instantiated backends expose the interned
#: id-array surface (``rows_interned``/``extend_interned``) the
#: compiled kernels run over.  Factories are classified by their
#: ``__name__`` (:func:`repro.storage.sharded.sharded_store_factory`
#: sets it); live :class:`~repro.storage.base.FactStore` instances are
#: probed directly with :func:`repro.kernels.kernel_capable`.
KERNEL_STORES = frozenset({"columnar", "sharded"})

_ENGINE_LABELS = {
    "datalog": "semi-naive least fixpoint (exact for full programs)",
    "pwl": "linear proof-tree search (Theorem 4.8)",
    "ward": "AND-OR alternating proof search (Theorem 4.9)",
    "chase": "restricted chase (exact iff it saturates)",
    "network": "streaming operator network (Section 7)",
}

_PIPELINES = {
    "datalog": (
        "run the semi-naive fixpoint over the EDB",
        "after each round, delta-evaluate q on the staged facts and "
        "stream the new answers",
    ),
    "pwl": (
        "reuse (or build) the star abstraction of (D, Σ)",
        "bounded chase probe settles cheap positives — streamed first",
        "enumerate candidate tuples from the abstraction's pools",
        "decide each remaining candidate by linear proof-tree search, "
        "streaming accepted tuples",
    ),
    "ward": (
        "reuse (or build) the star abstraction of (D, Σ)",
        "bounded chase probe settles cheap positives — streamed first",
        "enumerate candidate tuples from the abstraction's pools",
        "decide each remaining candidate by AND-OR search, streaming "
        "accepted tuples",
    ),
    "chase": (
        "run the restricted chase over the EDB",
        "after each firing, delta-evaluate q on the new atoms and "
        "stream the new answers",
        "on exhaustion, require saturation (strict) or report a sound "
        "under-approximation",
    ),
    "network": (
        "push EDB atoms through the compiled rule-node network "
        "(join orders planned once)",
        "delta-evaluate q on each derived atom and stream the new "
        "answers",
    ),
}


def _store_label(store) -> str:
    if isinstance(store, str):
        return store
    if isinstance(store, FactStore):
        return type(store).__name__
    return getattr(store, "__name__", type(store).__name__)


def validate_store(store):
    """Check a ``store=`` argument, with an error that names the options."""
    if isinstance(store, str) and store not in BACKENDS:
        raise ValueError(
            f"unknown storage backend {store!r}; choose one of "
            f"{', '.join(BACKENDS)}"
        )
    return store


@dataclass(frozen=True)
class QueryPlan:
    """A resolved execution plan for one query against one program.

    Frozen and printable: ``method`` is the engine that will run,
    ``reasons`` records why the planner chose it, ``steps`` the
    pipeline the executor follows.  ``engine_kwargs`` are forwarded to
    the engine verbatim (excluded from equality — they may hold live
    objects such as oracles or policies).
    """

    query: ConjunctiveQuery
    method: str
    store: Any = field(compare=False)
    store_name: str = "instance"
    program: CompiledProgram = field(compare=False, default=None)
    reasons: Tuple[str, ...] = ()
    steps: Tuple[str, ...] = ()
    engine_kwargs: Mapping[str, Any] = field(compare=False, default_factory=dict)
    #: The resolved rewrite dimension: ``"magic"`` iff ``rewriting`` is
    #: attached, else ``"none"``; ``rewrite_note`` carries the stable
    #: human-readable why/why-not shown by :meth:`explain`.
    rewrite: str = "none"
    rewrite_note: str = "none (plan not built by Planner.plan)"
    rewriting: Optional[MagicRewriting] = field(compare=False, default=None)
    #: The resolved exec dimension (:data:`EXEC_MODES` minus ``"auto"``):
    #: ``"kernel"`` runs the datalog engine's rounds as compiled batch
    #: kernels over interned id arrays, ``"interpret"`` keeps the
    #: per-tuple substitution interpreter; ``exec_note`` carries the
    #: stable why/why-not shown by :meth:`explain`.
    exec_mode: str = "interpret"
    exec_note: str = "interpret (plan not built by Planner.plan)"
    #: Whether a saturated materialization of this plan can be upgraded
    #: in place under EDB change sets (see :mod:`repro.incremental`);
    #: ``maintenance`` carries the human-readable why/why-not.  The
    #: default is the conservative "not classified" — only
    #: :meth:`Planner.plan` asserts maintainability (the session
    #: re-derives the real classification before ever maintaining).
    maintainable: bool = False
    maintenance: str = "unclassified (plan not built by Planner.plan)"

    @property
    def engine_label(self) -> str:
        return _ENGINE_LABELS[self.method]

    def explain(self) -> str:
        """A stable, human-readable rendering of the plan."""
        analysis = self.program.analysis
        lines = [
            f"plan for {self.query}",
            f"  program : {self.program.name} — "
            f"{self.program.rules} rule(s), class {analysis.program_class}, "
            f"max level {analysis.max_level}, "
            f"{len(analysis.strata.layers)} stratum/strata",
            f"  engine  : {self.method} — {self.engine_label}",
            f"  rewrite : {self.rewrite_note}",
            f"  exec    : {self.exec_note}",
            f"  store   : {self.store_name}",
            f"  update  : {self.maintenance}",
            f"  lint    : {self.program.diagnostics.summary()}",
            "  why:",
        ]
        lines.extend(f"    - {reason}" for reason in self.reasons)
        lines.append("  pipeline:")
        lines.extend(
            f"    {i}. {step}" for i, step in enumerate(self.steps, start=1)
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


class Planner:
    """Resolves (compiled program, query, method) into a :class:`QueryPlan`.

    This is the *only* place engine auto-dispatch lives: the legacy
    ``certain_answers`` and ``chase_answers`` facades both route
    through here, as does :meth:`repro.api.Session.query`.
    """

    def resolve(
        self, compiled: CompiledProgram, method: str = "auto"
    ) -> Tuple[str, Tuple[str, ...]]:
        """The engine for *compiled*, with the reasons for the choice."""
        if method != "auto":
            if method not in ENGINES:
                raise ValueError(f"unknown method {method!r}")
            return method, (f"engine {method!r} forced by the caller",)
        analysis = compiled.analysis
        if analysis.full and analysis.single_head:
            return "datalog", (
                "program is full and single-head → exact least-fixpoint "
                "evaluation",
            )
        if analysis.warded:
            if analysis.piecewise_linear:
                return "pwl", (
                    "program is warded and piece-wise linear → "
                    "space-efficient linear proof-tree search",
                )
            return "ward", (
                "program is warded but not piece-wise linear → AND-OR "
                "alternating search",
            )
        return "chase", (
            "program is outside WARD → chase, accepted only if it "
            "saturates (no complete procedure exists, Theorem 5.1)",
        )

    def plan(
        self,
        compiled: CompiledProgram,
        query: ConjunctiveQuery,
        *,
        method: str = "auto",
        store="instance",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        magic_provider: Optional[Callable] = None,
        **engine_kwargs,
    ) -> QueryPlan:
        """Build the :class:`QueryPlan` for one query.

        ``store`` is validated against :data:`repro.storage.BACKENDS`
        when given by name.  ``rewrite`` selects the demand dimension
        (:data:`REWRITES`): ``"auto"`` applies the magic-set rewriting
        exactly when the program is full, the plan resolved to the
        datalog engine, and the query binds at least one argument;
        ``"magic"`` forces it (an error outside that fragment);
        ``"none"`` disables it.  ``exec_mode`` selects the exec
        dimension (:data:`EXEC_MODES`): ``"auto"`` compiles the
        datalog engine's rounds to columnar batch kernels exactly when
        the store exposes interned id arrays (:data:`KERNEL_STORES`);
        ``"kernel"`` forces it (an error off the datalog engine or on
        an incapable store); ``"interpret"`` keeps the per-tuple
        interpreter.  ``magic_provider``, if given, builds
        the :class:`~repro.rewriting.magic.MagicRewriting` — the
        session passes its per-(program, binding-pattern) cache here.
        Remaining keyword arguments are forwarded to the chosen engine
        (``probe_depth``, ``width_bound``, ``strict``, ``max_atoms``,
        ...).
        """
        compiled = compile_program(compiled)
        validate_store(store)
        if compiled.program.has_negation():
            raise ValueError(
                "the evaluation engines cover positive Datalog± only; "
                "this program carries negated literals (see "
                "'python -m repro lint' for the static checks and "
                "repro.datalog.negation for stratified evaluation)"
            )
        resolved, reasons = self.resolve(compiled, method)
        if rewrite not in REWRITES:
            raise ValueError(
                f"unknown rewrite {rewrite!r}; choose one of "
                f"{', '.join(REWRITES)}"
            )
        if exec_mode not in EXEC_MODES:
            raise ValueError(
                f"unknown exec_mode {exec_mode!r}; choose one of "
                f"{', '.join(EXEC_MODES)}"
            )
        store_name = _store_label(store)
        if resolved != "datalog":
            if exec_mode == "kernel":
                raise ValueError(
                    "compiled kernels run on the datalog engine's "
                    f"semi-naive rounds; this plan resolved to {resolved!r}"
                )
            exec_resolved = "interpret"
            exec_note = (
                f"interpret (engine {resolved!r} has no compiled "
                "kernel path)"
            )
        elif exec_mode == "interpret":
            exec_resolved = "interpret"
            exec_note = "interpret (forced by the caller)"
        else:
            capable = (
                kernel_capable(store)
                if isinstance(store, FactStore)
                else store_name in KERNEL_STORES
            )
            if capable:
                exec_resolved = "kernel"
                exec_note = (
                    f"kernel (store '{store_name}' exposes interned "
                    "id arrays)"
                )
            elif exec_mode == "kernel":
                raise ValueError(
                    "exec_mode='kernel' needs a store with an interned "
                    "id-array surface (rows_interned/extend_interned); "
                    f"{store_name!r} has none"
                )
            else:
                exec_resolved = "interpret"
                exec_note = (
                    f"interpret (store '{store_name}' has no interned "
                    "id-array surface)"
                )
        rewriting = None
        bound = len(query_constants(query))
        if rewrite == "none":
            rewrite_note = "none (disabled by the caller)"
        elif resolved != "datalog":
            if rewrite == "magic":
                raise ValueError(
                    "magic rewriting runs on the datalog engine's full "
                    f"fixpoint; this plan resolved to {resolved!r}"
                )
            rewrite_note = (
                f"none (engine {resolved!r} does not saturate a full "
                "fixpoint to restrict)"
            )
        elif not compiled.analysis.full:
            if rewrite == "magic":
                raise ValueError(
                    "magic rewriting needs a full (existential-free) "
                    "program"
                )
            rewrite_note = "none (program has existential rules)"
        elif rewrite == "auto" and bound == 0:
            rewrite_note = (
                "none (no bound argument in the query — demand would "
                "cover the whole fixpoint)"
            )
        else:
            if magic_provider is not None:
                rewriting = magic_provider(compiled, query)
            else:
                rewriting = magic_rewrite(compiled.program, query)
            if rewrite == "auto" and not rewriting.adorned.restricts:
                # Demand leaves some reachable intensional predicate
                # all-free (possibly every one): that predicate's whole
                # fixpoint is re-derived plus magic/sup bookkeeping, so
                # ``auto`` conservatively declines — even when *other*
                # predicates are bound and a mixed rewriting could
                # still win; ``rewrite="magic"`` forces it for those.
                rewriting = None
                rewrite_note = (
                    "none (demand leaves a reachable intensional "
                    "predicate all-free — it would re-derive that "
                    "whole fixpoint; rewrite='magic' overrides)"
                )
            elif rewriting.adorned.restricts:
                rewrite_note = rewriting.describe()
                reasons = reasons + (
                    f"query binds {bound} argument(s) on a full "
                    "program → magic-set rewriting restricts "
                    "evaluation to demanded facts",
                )
            else:
                # Forced magic whose bindings do not restrict the
                # fixpoint: apply it as asked, but say so honestly.
                rewrite_note = rewriting.describe() + " (forced)"
                reasons = reasons + (
                    "magic rewriting forced by the caller; the "
                    f"{bound} bound argument(s) leave some demanded "
                    "predicate all-free, so demand does not restrict "
                    "the fixpoint",
                )
        from ..incremental import unmaintainable_reason

        gap = unmaintainable_reason(compiled.analysis)
        if rewriting is not None:
            maintainable = False
            maintenance = (
                "recompute on EDB change (magic-rewritten "
                "materialization is demand-specific)"
            )
        elif gap is None and resolved in ("pwl", "ward"):
            # The proof-tree engines hold no materialization to
            # maintain; their abstraction is recomputed per EDB change.
            maintainable = False
            maintenance = (
                "recompute on EDB change (proof-tree engines cache no "
                "materialization)"
            )
        elif gap is None:
            maintainable = True
            maintenance = "incremental (DRed + counting over the strata)"
        else:
            maintainable = False
            maintenance = f"recompute on EDB change ({gap})"
        return QueryPlan(
            query=query,
            method=resolved,
            store=store,
            store_name=store_name,
            program=compiled,
            reasons=reasons,
            steps=_PIPELINES[resolved],
            engine_kwargs=dict(engine_kwargs),
            rewrite="magic" if rewriting is not None else "none",
            rewrite_note=rewrite_note,
            rewriting=rewriting,
            exec_mode=exec_resolved,
            exec_note=exec_note,
            maintainable=maintainable,
            maintenance=maintenance,
        )
