"""Reachability indexes and the reasoning-to-reachability bridge.

Section 7, future-work item (2): "Reasoning with piece-wise linear
warded sets of TGDs is LogSpace-equivalent to reachability in directed
graphs.  Reachability in very large graphs has been well-studied and
many algorithms and heuristics have been designed that work well in
practice [2-hop labels, GRAIL, ...].  We are confident that several of
these algorithms can be adapted for our purposes."

This subpackage makes that equivalence executable:

* :mod:`digraph <repro.reachability.digraph>` — a minimal directed
  graph with SCC condensation (self-contained, no third-party deps);
* :mod:`index <repro.reachability.index>` — three classic reachability
  schemes behind one interface: on-demand DFS, GRAIL-style randomized
  interval labeling (negative-cut filter + verified fallback), and
  2-hop / pruned-landmark labeling (exact, constant-time queries);
* :mod:`bridge <repro.reachability.bridge>` — the LogSpace reduction
  itself: the configuration graph of the Section 4.3 linear proof
  search, materialized once per (program, database, goal predicate) so
  that *every* per-tuple certainty check becomes one reachability query
  against any of the indexes.
"""

from .bridge import ConfigurationGraph, configuration_graph, data_graph
from .digraph import DiGraph
from .index import (
    DFSReachability,
    IntervalIndex,
    ReachabilityIndex,
    TwoHopIndex,
)

__all__ = [
    "DiGraph",
    "ReachabilityIndex",
    "DFSReachability",
    "IntervalIndex",
    "TwoHopIndex",
    "ConfigurationGraph",
    "configuration_graph",
    "data_graph",
]
