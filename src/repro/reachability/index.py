"""Reachability indexes (Section 7, future work (2)).

Three classic schemes behind one interface, chosen because the paper
cites exactly these lines of work:

* :class:`DFSReachability` — no index at all; every query is a fresh
  graph search.  The baseline every index must beat on query time.
* :class:`IntervalIndex` — GRAIL-style randomized interval labeling
  [Yildirim, Chaoji, Zaki, PVLDB 2010]: *k* random depth-first
  traversals of the SCC condensation assign each node an interval
  ``[low, post]`` such that u ⇝ v implies interval(v) ⊆ interval(u) in
  every labeling.  A failed containment is a definitive **no** in O(k);
  containment in all labelings is verified by a label-pruned DFS, so
  answers are exact.
* :class:`TwoHopIndex` — 2-hop labeling [Cohen, Halperin, Kaplan,
  Zwick, SIAM J. Comput. 2003] built with pruned landmark BFS
  [Akiba, Iwata, Yoshida, SIGMOD 2013]: each node stores the landmarks
  that reach it (``label_in``) and that it reaches (``label_out``);
  u ⇝ v iff the labels intersect.  Exact, query time O(|labels|).

Every index records build/query counters so the E9 benchmark can report
the classic index trade-off (build work + label size vs. query work).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from .digraph import DiGraph

__all__ = [
    "ReachabilityIndex",
    "DFSReachability",
    "IntervalIndex",
    "TwoHopIndex",
]

Node = Hashable


@dataclass
class IndexStats:
    """Build/query counters shared by all indexes."""

    build_visits: int = 0        # node visits during construction
    label_entries: int = 0       # total stored label entries
    queries: int = 0
    query_visits: int = 0        # node visits during queries (fallbacks)
    negative_cuts: int = 0       # queries settled by a label check alone


class ReachabilityIndex:
    """Common interface: ``reaches(u, v)`` — is there a path u ⇝ v?

    Reachability here is reflexive (every node reaches itself), matching
    the convention of the indexing literature; callers that need strict
    (length ≥ 1) reachability check an edge-successor explicitly.
    """

    def __init__(self, graph: DiGraph):
        self.graph = graph
        self.stats = IndexStats()

    def reaches(self, u: Node, v: Node) -> bool:  # pragma: no cover
        raise NotImplementedError


class DFSReachability(ReachabilityIndex):
    """The no-index baseline: one graph search per query."""

    def reaches(self, u: Node, v: Node) -> bool:
        self.stats.queries += 1
        if u not in self.graph or v not in self.graph:
            return False
        if u == v:
            return True
        seen: Set[Node] = {u}
        stack: List[Node] = [u]
        while stack:
            node = stack.pop()
            self.stats.query_visits += 1
            for successor in self.graph.successors(node):
                if successor == v:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False


class IntervalIndex(ReachabilityIndex):
    """GRAIL: k randomized post-order interval labelings + verified DFS.

    Intervals live on the SCC condensation, so cycles are handled for
    free: two nodes of one SCC trivially reach each other.
    """

    def __init__(self, graph: DiGraph, k: int = 3, seed: int = 2019):
        super().__init__(graph)
        self.k = k
        self._dag, self._component_of = graph.condensation()
        # intervals[i][c] = (low, post) for component c in labeling i.
        self._intervals: List[Dict[int, Tuple[int, int]]] = []
        rng = random.Random(seed)
        for _ in range(k):
            self._intervals.append(self._one_labeling(rng))
            self.stats.label_entries += len(self._dag)

    def _one_labeling(self, rng: random.Random) -> Dict[int, Tuple[int, int]]:
        """One randomized post-order traversal of the condensation DAG.

        ``post`` is the post-order rank; ``low`` is the minimum post
        rank in the subtree *plus* the already-labeled children — the
        GRAIL min-rank propagation that makes intervals sound for DAGs
        (interval(v) ⊆ interval(u) is necessary for u ⇝ v).
        """
        post: Dict[int, int] = {}
        low: Dict[int, int] = {}
        counter = [0]
        roots = [
            node for node in self._dag.nodes() if self._dag.in_degree(node) == 0
        ]
        rng.shuffle(roots)

        visited: Set[int] = set()

        def visit(start: int) -> None:
            stack: List[Tuple[int, Optional[List[int]]]] = [(start, None)]
            while stack:
                node, children = stack.pop()
                if children is None:
                    if node in visited:
                        continue
                    visited.add(node)
                    self.stats.build_visits += 1
                    ordered = list(self._dag.successors(node))
                    rng.shuffle(ordered)
                    stack.append((node, ordered))
                    for child in reversed(ordered):
                        if child not in visited:
                            stack.append((child, None))
                else:
                    counter[0] += 1
                    post[node] = counter[0]
                    child_lows = [
                        low[child] for child in children if child in low
                    ]
                    low[node] = min(child_lows + [post[node]])

        for root in roots:
            visit(root)
        for node in self._dag.nodes():  # disconnected pieces
            if node not in visited:
                visit(node)
        return {
            node: (low[node], post[node]) for node in self._dag.nodes()
        }

    def _label_admits(self, cu: int, cv: int) -> bool:
        """True unless some labeling refutes cu ⇝ cv."""
        for intervals in self._intervals:
            low_u, post_u = intervals[cu]
            low_v, post_v = intervals[cv]
            if not (low_u <= low_v and post_v <= post_u):
                return False
        return True

    def reaches(self, u: Node, v: Node) -> bool:
        self.stats.queries += 1
        if u not in self.graph or v not in self.graph:
            return False
        cu, cv = self._component_of[u], self._component_of[v]
        if cu == cv:
            return True
        if not self._label_admits(cu, cv):
            self.stats.negative_cuts += 1
            return False
        # Verified DFS on the condensation, pruned by the labels.
        seen: Set[int] = {cu}
        stack: List[int] = [cu]
        while stack:
            component = stack.pop()
            self.stats.query_visits += 1
            for successor in self._dag.successors(component):
                if successor == cv:
                    return True
                if successor not in seen and self._label_admits(successor, cv):
                    seen.add(successor)
                    stack.append(successor)
        return False


class TwoHopIndex(ReachabilityIndex):
    """2-hop labeling via pruned landmark BFS — exact, label-only queries."""

    def __init__(self, graph: DiGraph):
        super().__init__(graph)
        # label_in[v]: landmarks that reach v; label_out[v]: landmarks
        # v reaches.  Landmarks are processed by descending degree so
        # high-coverage hubs prune the most.
        self.label_in: Dict[Node, Set[Node]] = {
            node: set() for node in graph.nodes()
        }
        self.label_out: Dict[Node, Set[Node]] = {
            node: set() for node in graph.nodes()
        }
        order = sorted(
            graph.nodes(),
            key=lambda n: (-(graph.out_degree(n) + graph.in_degree(n)),
                           repr(n)),
        )
        for landmark in order:
            self._pruned_bfs(landmark, forward=True)
            self._pruned_bfs(landmark, forward=False)
        self.stats.label_entries = sum(
            len(s) for s in self.label_in.values()
        ) + sum(len(s) for s in self.label_out.values())

    def _covered(self, u: Node, v: Node) -> bool:
        """Is u ⇝ v already answerable from the labels built so far?"""
        if u == v:
            return True
        out_u = self.label_out[u] | {u}
        in_v = self.label_in[v] | {v}
        return not out_u.isdisjoint(in_v)

    def _pruned_bfs(self, landmark: Node, *, forward: bool) -> None:
        frontier: List[Node] = [landmark]
        seen: Set[Node] = {landmark}
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                self.stats.build_visits += 1
                neighbors = (
                    self.graph.successors(node)
                    if forward
                    else self.graph.predecessors(node)
                )
                for neighbor in neighbors:
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    if forward:
                        # landmark ⇝ neighbor; prune if already covered.
                        if self._covered(landmark, neighbor):
                            continue
                        self.label_in[neighbor].add(landmark)
                    else:
                        if self._covered(neighbor, landmark):
                            continue
                        self.label_out[neighbor].add(landmark)
                    next_frontier.append(neighbor)
            frontier = next_frontier

    def reaches(self, u: Node, v: Node) -> bool:
        self.stats.queries += 1
        if u not in self.graph or v not in self.graph:
            return False
        return self._covered(u, v)
