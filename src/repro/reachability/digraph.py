"""A minimal directed graph with the structure reachability indexes need.

Nodes are arbitrary hashable objects.  The implementation is
intentionally dependency-free: the reproduction's reachability layer
(Section 7, future work (2)) must stand on its own, exactly like the
rest of the substrate.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

__all__ = ["DiGraph"]

Node = Hashable


class DiGraph:
    """A directed graph over hashable nodes with forward/backward adjacency."""

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._edge_count = 0

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[Node, Node]]) -> "DiGraph":
        graph = DiGraph()
        for u, v in pairs:
            graph.add_edge(u, v)
        return graph

    def add_node(self, node: Node) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, u: Node, v: Node) -> None:
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._edge_count += 1

    # -- inspection -----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def successors(self, node: Node) -> Set[Node]:
        return self._succ.get(node, set())

    def predecessors(self, node: Node) -> Set[Node]:
        return self._pred.get(node, set())

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, ()))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, ()))

    def reverse(self) -> "DiGraph":
        reversed_graph = DiGraph()
        for node in self.nodes():
            reversed_graph.add_node(node)
        for u, v in self.edges():
            reversed_graph.add_edge(v, u)
        return reversed_graph

    # -- traversal -------------------------------------------------------------

    def reachable_from(self, source: Node) -> Set[Node]:
        """All nodes reachable from *source* (including itself)."""
        if source not in self:
            return set()
        seen: Set[Node] = {source}
        stack: List[Node] = [source]
        while stack:
            node = stack.pop()
            for successor in self._succ[node]:
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    # -- strongly connected components -----------------------------------------

    def sccs(self) -> List[List[Node]]:
        """Strongly connected components (iterative Tarjan), in reverse
        topological order of the condensation (sinks first)."""
        index_of: Dict[Node, int] = {}
        lowlink: Dict[Node, int] = {}
        on_stack: Set[Node] = set()
        stack: List[Node] = []
        components: List[List[Node]] = []
        counter = [0]

        for root in list(self._succ):
            if root in index_of:
                continue
            # Iterative DFS with an explicit work stack of (node, iterator).
            work: List[Tuple[Node, Iterator[Node]]] = []
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(self._succ[root], key=repr))))
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index_of:
                        index_of[successor] = lowlink[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor,
                             iter(sorted(self._succ[successor], key=repr)))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(
                            lowlink[node], index_of[successor]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[Node] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def condensation(self) -> Tuple["DiGraph", Dict[Node, int]]:
        """The DAG of SCCs and the node → component-id mapping.

        Component ids follow a topological order: an edge always goes
        from a lower id to a higher id.
        """
        components = self.sccs()
        # Tarjan emits sinks first; reverse for topological numbering.
        components.reverse()
        component_of: Dict[Node, int] = {}
        for component_id, members in enumerate(components):
            for member in members:
                component_of[member] = component_id
        dag = DiGraph()
        for component_id in range(len(components)):
            dag.add_node(component_id)
        for u, v in self.edges():
            cu, cv = component_of[u], component_of[v]
            if cu != cv:
                dag.add_edge(cu, cv)
        return dag, component_of

    def topological_order(self) -> List[Node]:
        """Kahn's algorithm; raises ``ValueError`` on a cycle."""
        in_degree = {node: self.in_degree(node) for node in self.nodes()}
        ready = sorted(
            (node for node, degree in in_degree.items() if degree == 0),
            key=repr,
        )
        order: List[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for successor in sorted(self._succ[node], key=repr):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order")
        return order
