"""The reasoning ⇝ reachability bridge (Section 7, future work (2)).

The paper observes that reasoning with piece-wise linear warded TGDs is
LogSpace-equivalent to directed-graph reachability.  One direction is
classic (reachability *is* a linear-Datalog query); this module makes
the interesting direction executable: the linear proof search of
Section 4.3 explores a finite graph of canonical CQ configurations, and

    c̄ ∈ cert(q, D, Σ)   iff   the configuration graph has a path from
                               the instantiated query to the empty CQ.

:func:`configuration_graph` materializes that graph **once** per
(query, database, program) for *all* candidate answer tuples — every
per-tuple certainty check then becomes a single ``reaches(source,
accept)`` call against any index of :mod:`repro.reachability.index`.
This is exactly the adaptation the paper anticipates: build a
reachability index over the configuration space, answer certainty
queries at index speed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.levels import node_width_bound_pwl
from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from ..reasoning.state import State, SuccessorGenerator
from .digraph import DiGraph
from .index import ReachabilityIndex

__all__ = ["ConfigurationGraph", "configuration_graph", "data_graph"]

#: The unique accepting configuration: the empty CQ.
ACCEPT = State(())


def data_graph(database: Database, predicate: str) -> DiGraph:
    """The directed graph stored in a binary EDB predicate."""
    graph = DiGraph()
    for atom in database.with_predicate(predicate):
        if atom.arity == 2:
            graph.add_edge(atom.args[0], atom.args[1])
    return graph


@dataclass
class ConfigurationGraph:
    """The materialized configuration space of the linear proof search."""

    graph: DiGraph
    source_of: Dict[Tuple[Constant, ...], State]
    width_bound: int
    explored: int                      # states expanded during the build
    truncated: bool = False            # True iff max_states cut the build

    @property
    def accept(self) -> State:
        return ACCEPT

    def certain(
        self, answer: Sequence[Constant], index: ReachabilityIndex
    ) -> bool:
        """Is *answer* certain?  One reachability query on the graph."""
        source = self.source_of.get(tuple(answer))
        if source is None:
            return False
        return index.reaches(source, ACCEPT)


def configuration_graph(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    answers: Optional[Iterable[Sequence[Constant]]] = None,
    width_bound: Optional[int] = None,
    max_states: Optional[int] = None,
    check_membership: bool = True,
    use_oracle: bool = True,
) -> ConfigurationGraph:
    """Materialize the configuration graph for every candidate answer.

    *answers* defaults to all |dom(D)|^k output tuples; pass an iterable
    to restrict the sources.  The graph is the same one
    :func:`repro.reasoning.pwl_ward.linear_proof_search` explores
    (successor = one resolution/specialization step with eager
    database-fact decomposition), so path existence to the empty CQ is
    exactly Theorem 4.8 certainty.
    """
    if check_membership:
        if not is_warded(program):
            raise ValueError("program is not warded")
        if not is_piecewise_linear(program):
            raise ValueError("program is not piece-wise linear")
    normalized = program.single_head()
    bound = (
        width_bound
        if width_bound is not None
        else max(node_width_bound_pwl(query, normalized), query.width())
    )
    generator = SuccessorGenerator(
        database,
        normalized,
        bound,
        use_oracle=use_oracle,
    )

    if answers is None:
        domain = sorted(database.constants(), key=str)
        arity = len(query.output)
        answers = itertools.product(domain, repeat=arity)

    graph = DiGraph()
    graph.add_node(ACCEPT)
    source_of: Dict[Tuple[Constant, ...], State] = {}
    frontier: List[State] = []
    discovered: Set[State] = {ACCEPT}

    for answer in answers:
        answer = tuple(answer)
        initial = State.make(query.instantiate(answer), database)
        source_of[answer] = initial
        graph.add_node(initial)
        if initial in discovered:
            continue
        discovered.add(initial)
        if initial.width() <= bound and not (
            not initial.is_accepting() and generator.is_dead(initial)
        ):
            frontier.append(initial)

    explored = 0
    truncated = False
    while frontier:
        if max_states is not None and len(discovered) > max_states:
            truncated = True
            break
        state = frontier.pop()
        explored += 1
        for successor in generator.successors(state):
            graph.add_edge(state, successor)
            if successor not in discovered:
                discovered.add(successor)
                if not successor.is_accepting():
                    frontier.append(successor)

    return ConfigurationGraph(
        graph=graph,
        source_of=source_of,
        width_bound=bound,
        explored=explored,
        truncated=truncated,
    )
