"""Guide structures for aggressive termination control (Section 7(1)).

The Vadalog system builds *linear forests*, *warded forests*, and
*lifted linear forests* over the chase to terminate recursion as early
as possible; the structures themselves are only sketched in the
literature (reference [6]), so this module implements the closest open
reconstruction (**[SIM]**, DESIGN.md §5): per-derivation-chain pattern
tracking over invented nulls.

Every null carries the *pattern* under which it was invented — an
interned shape ``(rule, body-image shape)`` where nulls inside the shape
are abstracted to their own patterns.  A new invention is *cut* when its
pattern already occurs in the ancestry of the nulls it consumes: the
sub-chase it would open is isomorphic to one already open further up
the same chain, so no new ground consequence can come from it.  For
warded programs the number of patterns is bounded, which is exactly why
the technique terminates the warded chase.

Compared with the global :class:`~repro.chase.termination.IsomorphismPolicy`
(one representative per shape in the whole instance), the forest guide
is *per chain* — less aggressive, retaining more of the chase, which is
the trade-off the E7 ablation benchmark measures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from ..core.atoms import Atom
from ..core.terms import Null

__all__ = ["LinearForestGuide", "NoGuide"]


class NoGuide:
    """The trivial guide: never cuts (termination left to resource caps)."""

    def allows(self, rule_index: int, body_image: Sequence[Atom]) -> bool:
        return True

    def register(
        self,
        rule_index: int,
        body_image: Sequence[Atom],
        invented: Sequence[Null],
    ) -> None:
        pass


class LinearForestGuide:
    """Per-chain pattern tracking over invented nulls.

    ``allows`` is consulted before an existential rule fires;
    ``register`` records the invention afterwards, assigning the new
    nulls their pattern and ancestry.
    """

    def __init__(self) -> None:
        self._pattern_ids: Dict[tuple, int] = {}
        self._pattern_of_null: Dict[Null, int] = {}
        self._ancestry: Dict[Null, FrozenSet[int]] = {}
        self.cuts = 0

    # -- pattern computation -------------------------------------------------

    def _pattern(self, rule_index: int, body_image: Sequence[Atom]) -> int:
        """Intern the isomorphism type of a firing.

        Nulls are abstracted positionally (first-occurrence indices
        across the whole body image, preserving the equality pattern),
        *not* by their own pattern — recursing into null patterns would
        make the pattern space unbounded and the guide would never cut.
        """
        null_index: Dict[Null, int] = {}
        shaped: List[tuple] = []
        for atom in sorted(body_image, key=str):
            codes = []
            for term in atom.args:
                if isinstance(term, Null):
                    codes.append(
                        ("null", null_index.setdefault(term, len(null_index)))
                    )
                else:
                    codes.append(("const", str(term)))
            shaped.append((atom.predicate, tuple(codes)))
        shape = (rule_index, tuple(shaped))
        pattern_id = self._pattern_ids.get(shape)
        if pattern_id is None:
            pattern_id = len(self._pattern_ids)
            self._pattern_ids[shape] = pattern_id
        return pattern_id

    def _input_ancestry(self, body_image: Sequence[Atom]) -> FrozenSet[int]:
        collected: set[int] = set()
        for atom in body_image:
            for term in atom.args:
                if isinstance(term, Null):
                    collected.update(self._ancestry.get(term, frozenset()))
                    pattern = self._pattern_of_null.get(term)
                    if pattern is not None:
                        collected.add(pattern)
        return frozenset(collected)

    # -- guide interface -----------------------------------------------------

    def allows(self, rule_index: int, body_image: Sequence[Atom]) -> bool:
        """False iff this invention repeats a pattern along its own chain."""
        pattern = self._pattern(rule_index, body_image)
        if pattern in self._input_ancestry(body_image):
            self.cuts += 1
            return False
        return True

    def register(
        self,
        rule_index: int,
        body_image: Sequence[Atom],
        invented: Sequence[Null],
    ) -> None:
        """Record the invention: pattern and ancestry for the new nulls."""
        if not invented:
            return
        pattern = self._pattern(rule_index, body_image)
        ancestry = self._input_ancestry(body_image)
        for null in invented:
            self._pattern_of_null[null] = pattern
            self._ancestry[null] = ancestry

    @property
    def patterns_seen(self) -> int:
        return len(self._pattern_ids)
