"""The streaming operator network (Section 7(3)).

The Vadalog system compiles the optimizer's plan into "a network of
operator nodes" through which data streams; recursion and existential
quantification are handled *inside* the network, with guide structures
consulted at the nodes for termination control.

:class:`OperatorNetwork` is that architecture in miniature:

* one **rule node** per (TGD, pinned body position) — it receives the
  delta stream of its pinned predicate, probes the remaining body atoms
  in the optimizer's join order against the indexed instance, and emits
  head tuples (inventing nulls for existential variables after asking
  the guide);
* a **router** dispatches every derived atom back to the rule nodes
  whose pinned predicate matches — the feedback edge that realizes
  recursion;
* statistics count the intermediate bindings each join explores, the
  observable the E7 join-ordering ablation measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Null, NullFactory, Term, Variable
from ..core.tgd import TGD
from ..storage import FactStore, StoreChoice, make_store
from .guides import NoGuide
from .optimizer import JoinOptimizer, JoinPlan

__all__ = ["EngineEvent", "EngineResult", "EngineRun", "OperatorNetwork"]


@dataclass
class EngineResult:
    """Outcome of one network run."""

    instance: FactStore
    saturated: bool
    events: int                 # delta atoms routed through the network
    derived: int                # new atoms produced
    intermediate_bindings: int  # partial join bindings explored
    guide_cuts: int


@dataclass(frozen=True)
class EngineEvent:
    """One pull-based event of a network run.

    Event 0 carries the seeded database; each later event carries one
    atom the network derived.  ``instance`` is the live store *after*
    the addition, shared across events.
    """

    index: int
    new_atoms: tuple[Atom, ...]
    instance: FactStore


@dataclass
class EngineRun:
    """Mutable run record shared between :meth:`OperatorNetwork.stream`
    and its drivers; filled in as the generator is drained."""

    instance: Optional[FactStore] = None
    saturated: bool = True
    events: int = 0
    derived: int = 0
    intermediate_bindings: int = 0
    guide_cuts: int = 0

    def result(self) -> EngineResult:
        assert self.instance is not None
        return EngineResult(
            instance=self.instance,
            saturated=self.saturated,
            events=self.events,
            derived=self.derived,
            intermediate_bindings=self.intermediate_bindings,
            guide_cuts=self.guide_cuts,
        )


class _RuleNode:
    """One rule with one pinned body position, join order fixed by a plan."""

    def __init__(self, rule_index: int, tgd: TGD, pin: int, plan: JoinPlan):
        self.rule_index = rule_index
        self.tgd = tgd
        self.pin = pin
        # Probe order: the plan's order with the pinned position removed.
        self.probe_order = tuple(i for i in plan.order if i != pin)
        self.head = tgd.head[0]
        self.existentials = sorted(
            tgd.existential_variables(), key=lambda v: v.name
        )


class OperatorNetwork:
    """A push-based evaluation network for single-head TGD programs."""

    def __init__(
        self,
        program: Program,
        *,
        optimizer: Optional[JoinOptimizer] = None,
        guide: Optional[object] = None,
        null_factory: Optional[NullFactory] = None,
    ):
        if not program.is_single_head():
            program = program.single_head()
        self.program = program
        self.optimizer = optimizer or JoinOptimizer(program)
        self.guide = guide if guide is not None else NoGuide()
        self.null_factory = null_factory or NullFactory()

        self._nodes_by_predicate: Dict[str, List[_RuleNode]] = {}
        for rule_index, tgd in enumerate(program):
            plan = self.optimizer.plan(tgd)
            for pin in range(len(tgd.body)):
                node = _RuleNode(rule_index, tgd, pin, plan)
                self._nodes_by_predicate.setdefault(
                    tgd.body[pin].predicate, []
                ).append(node)

    # -- join execution ----------------------------------------------------

    def _probe(
        self,
        node: _RuleNode,
        delta_atom: Atom,
        instance: FactStore,
        counters: List[int],
    ) -> List[Dict[Variable, Term]]:
        """All body matches of the node using *delta_atom* at the pin."""
        pinned = node.tgd.body[node.pin]
        if (
            pinned.predicate != delta_atom.predicate
            or pinned.arity != delta_atom.arity
        ):
            return []
        seed: Dict[Variable, Term] = {}
        for p_term, d_term in zip(pinned.args, delta_atom.args):
            if isinstance(p_term, Variable):
                bound = seed.get(p_term)
                if bound is not None and bound != d_term:
                    return []
                seed[p_term] = d_term
            elif p_term != d_term:
                return []

        matches: List[Dict[Variable, Term]] = []

        def join(step: int, assignment: Dict[Variable, Term]) -> None:
            if step == len(node.probe_order):
                matches.append(dict(assignment))
                return
            atom = node.tgd.body[node.probe_order[step]]
            pattern = Atom(
                atom.predicate,
                tuple(
                    assignment.get(t, t) if isinstance(t, Variable) else t
                    for t in atom.args
                ),
            )
            for stored in instance.matching(pattern):
                counters[0] += 1  # intermediate binding explored
                added: List[Variable] = []
                ok = True
                for p_term, s_term in zip(pattern.args, stored.args):
                    if isinstance(p_term, Variable):
                        seen = assignment.get(p_term)
                        if seen is None:
                            assignment[p_term] = s_term
                            added.append(p_term)
                        elif seen != s_term:
                            ok = False
                            break
                if ok:
                    join(step + 1, assignment)
                for var in added:
                    del assignment[var]

        join(0, seed)
        return matches

    # -- run loop ------------------------------------------------------------

    def stream(
        self,
        database: Database,
        *,
        max_atoms: Optional[int] = None,
        max_events: Optional[int] = None,
        store: StoreChoice = "instance",
        run: Optional[EngineRun] = None,
    ):
        """Stream the database through the network, yielding derived atoms.

        A lazy generator of :class:`EngineEvent`: the engine core that
        :meth:`run` drains eagerly.  ``store`` selects the backing
        :class:`FactStore` the network materializes into (see
        :data:`repro.storage.BACKENDS`); progress counters accumulate on
        *run*.
        """
        run = run if run is not None else EngineRun()
        instance = make_store(store, database)
        run.instance = instance
        queue: Deque[Atom] = deque(instance)
        counters = [0]
        event_index = 0
        yield EngineEvent(
            index=0, new_atoms=tuple(instance), instance=instance
        )

        while queue:
            if max_events is not None and run.events >= max_events:
                run.saturated = False
                break
            if max_atoms is not None and len(instance) >= max_atoms:
                run.saturated = False
                break
            delta_atom = queue.popleft()
            run.events += 1
            for node in self._nodes_by_predicate.get(delta_atom.predicate, ()):
                for assignment in self._probe(node, delta_atom, instance, counters):
                    body_image = [
                        Atom(
                            a.predicate,
                            tuple(
                                assignment.get(t, t)
                                if isinstance(t, Variable)
                                else t
                                for t in a.args
                            ),
                        )
                        for a in node.tgd.body
                    ]
                    if node.existentials:
                        if not self.guide.allows(node.rule_index, body_image):
                            continue
                        invented = {
                            var: self.null_factory.fresh(
                                depth=1
                                + max(
                                    (
                                        t.depth
                                        for atom in body_image
                                        for t in atom.args
                                        if isinstance(t, Null)
                                    ),
                                    default=0,
                                )
                            )
                            for var in node.existentials
                        }
                        full_assignment = {**assignment, **invented}
                        self.guide.register(
                            node.rule_index,
                            body_image,
                            list(invented.values()),
                        )
                    else:
                        full_assignment = assignment
                    head_atom = Atom(
                        node.head.predicate,
                        tuple(
                            full_assignment.get(t, t)
                            if isinstance(t, Variable)
                            else t
                            for t in node.head.args
                        ),
                    )
                    if head_atom not in instance:
                        instance.add(head_atom)
                        queue.append(head_atom)
                        run.derived += 1
                        event_index += 1
                        run.intermediate_bindings = counters[0]
                        yield EngineEvent(
                            index=event_index,
                            new_atoms=(head_atom,),
                            instance=instance,
                        )

        if queue:
            run.saturated = False
        run.intermediate_bindings = counters[0]
        run.guide_cuts = getattr(self.guide, "cuts", 0)

    def run(
        self,
        database: Database,
        *,
        max_atoms: Optional[int] = None,
        max_events: Optional[int] = None,
        store: StoreChoice = "instance",
    ) -> EngineResult:
        """Stream the database through the network to (bounded) fixpoint.

        Thin eager driver over :meth:`stream`; see there for semantics.
        """
        run = EngineRun()
        for _ in self.stream(
            database,
            max_atoms=max_atoms,
            max_events=max_events,
            store=store,
            run=run,
        ):
            pass
        return run.result()
