"""Vadalog-style evaluation engine: operator network, PWL-aware join
optimizer, and guide-structure termination control (Section 7)."""

from .guides import LinearForestGuide, NoGuide
from .operators import EngineEvent, EngineResult, EngineRun, OperatorNetwork
from .optimizer import JoinOptimizer, JoinPlan

__all__ = [
    "OperatorNetwork",
    "EngineEvent",
    "EngineResult",
    "EngineRun",
    "JoinOptimizer",
    "JoinPlan",
    "LinearForestGuide",
    "NoGuide",
]
