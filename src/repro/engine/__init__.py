"""Vadalog-style evaluation engine: operator network, PWL-aware join
optimizer, and guide-structure termination control (Section 7)."""

from .guides import LinearForestGuide, NoGuide
from .operators import EngineResult, OperatorNetwork
from .optimizer import JoinOptimizer, JoinPlan

__all__ = [
    "OperatorNetwork",
    "EngineResult",
    "JoinOptimizer",
    "JoinPlan",
    "LinearForestGuide",
    "NoGuide",
]
