"""Join ordering with the piece-wise linearity bias (Section 7(2)).

The Vadalog optimizer "detects and uses piece-wise linearity for the
purpose of join ordering": a TGD of a PWL program has at most one body
atom mutually recursive with the head, and join algorithms are optimized
towards having that recursive predicate as the first (or last) operand.

:class:`JoinOptimizer` produces a static join order per TGD:

* with ``pwl_bias`` the recursive atom is pinned to the front (it is
  the delta-driven operand in a streaming engine), and the remaining
  atoms are ordered greedily by connectivity — each next atom shares as
  many variables as possible with the atoms already placed (maximally
  bound ⇒ most selective);
* without it, the body order is taken as written (the naive baseline
  the E7 ablation compares against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..analysis.piecewise import recursive_body_atoms
from ..analysis.predicate_graph import PredicateGraph
from ..core.atoms import Atom
from ..core.program import Program
from ..core.terms import Variable
from ..core.tgd import TGD

__all__ = ["JoinPlan", "JoinOptimizer"]


@dataclass(frozen=True)
class JoinPlan:
    """A static join order: body indices in execution order."""

    tgd: TGD
    order: tuple[int, ...]

    def ordered_body(self) -> tuple[Atom, ...]:
        return tuple(self.tgd.body[i] for i in self.order)


class JoinOptimizer:
    """Per-TGD join planning over a fixed program."""

    def __init__(self, program: Program, *, pwl_bias: bool = True):
        self.program = program
        self.pwl_bias = pwl_bias
        self._graph = PredicateGraph(program)

    def plan(self, tgd: TGD) -> JoinPlan:
        """Compute the join order for one TGD of the program."""
        indices = list(range(len(tgd.body)))
        if not self.pwl_bias or len(indices) == 1:
            return JoinPlan(tgd, tuple(indices))

        recursive = recursive_body_atoms(tgd, self._graph)
        recursive_ids = {id(a) for a in recursive}
        first: Optional[int] = None
        for i, atom in enumerate(tgd.body):
            if id(atom) in recursive_ids:
                first = i
                break

        placed: List[int] = []
        bound: Set[Variable] = set()
        remaining = list(indices)
        if first is not None:
            placed.append(first)
            bound |= tgd.body[first].variables()
            remaining.remove(first)

        while remaining:
            # Greedy connectivity: maximize shared (already bound)
            # variables, break ties toward smaller unbound surface.
            def score(i: int) -> tuple:
                atom_vars = tgd.body[i].variables()
                return (
                    len(atom_vars & bound),
                    -len(atom_vars - bound),
                    -i,
                )

            best = max(remaining, key=score)
            placed.append(best)
            bound |= tgd.body[best].variables()
            remaining.remove(best)

        return JoinPlan(tgd, tuple(placed))

    def plans(self) -> dict[TGD, JoinPlan]:
        """Plans for every TGD of the program."""
        return {tgd: self.plan(tgd) for tgd in self.program}
