"""Query answering for WARD: the alternating algorithm (Section 4.3).

For arbitrary warded sets linear proof trees do not suffice, but by
Theorem 4.9 bounded node-width proof trees do (bound ``f_WARD(q, Σ) =
2·max(|q|, max |body|)``).  The paper's algorithm builds the branches of
such a tree "in parallel universal computations using alternation"; the
deterministic rendering is a least fixpoint over an AND-OR graph of
configurations:

* OR moves — resolution and specialization successors of the current
  configuration (as in the linear search);
* AND move — *decomposition* of the configuration into the connected
  components of its variable-sharing graph: every component must be
  solved (Definition 4.4 guarantees components are independent).

A configuration is *accepted* iff it is empty, some OR successor is
accepted, or all components of its decomposition are accepted.  The
implementation expands the reachable graph breadth-first and propagates
acceptance backwards incrementally (counters on AND groups), stopping as
soon as the initial configuration is accepted — the textbook
polynomial-time evaluation of an alternating-logspace machine, which is
exactly how Proposition 3.2's PTime data complexity arises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..analysis.levels import node_width_bound_ward
from ..analysis.wardedness import is_warded
from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from ..prooftree.decomposition import connected_components
from .state import Frontier, SearchStats, State, SuccessorGenerator

__all__ = ["WardDecision", "decide_ward", "and_or_search"]


@dataclass
class WardDecision:
    """Outcome of one alternating-search run."""

    accepted: bool
    stats: SearchStats
    width_bound: int
    discovered: int          # distinct configurations materialized
    exhausted: bool = True   # False iff the state cap stopped the search


def and_or_search(
    initial_atoms: Sequence[Atom],
    database: Database,
    program: Program,
    width_bound: int,
    *,
    specialization: str = "guided",
    strategy: str = "bestfirst",
    max_states: Optional[int] = None,
    stats: Optional[SearchStats] = None,
    oracle: Optional[object] = None,
    use_oracle: bool = True,
) -> WardDecision:
    """Least-fixpoint acceptance over the AND-OR configuration graph."""
    stats = stats if stats is not None else SearchStats()
    generator = SuccessorGenerator(
        database,
        program,
        width_bound,
        specialization=specialization,
        stats=stats,
        oracle=oracle,
        use_oracle=use_oracle,
    )
    initial = State.make(tuple(initial_atoms), database)
    stats.max_width = max(stats.max_width, initial.width())
    if initial.is_accepting():
        return WardDecision(True, stats, width_bound, 1)
    if initial.width() > width_bound or generator.is_dead(initial):
        return WardDecision(False, stats, width_bound, 1)

    accepted: Set[State] = set()
    discovered: Set[State] = {initial}
    or_parents: Dict[State, List[State]] = {}
    and_parents: Dict[State, List[State]] = {}
    and_pending: Dict[State, int] = {}
    queue = Frontier(strategy)
    queue.push(initial)

    def mark_accepted(state: State) -> None:
        stack = [state]
        while stack:
            current = stack.pop()
            if current in accepted:
                continue
            accepted.add(current)
            stack.extend(or_parents.get(current, ()))
            for parent in and_parents.get(current, ()):
                and_pending[parent] -= 1
                if and_pending[parent] == 0:
                    stack.append(parent)

    exhausted = True
    while queue and initial not in accepted:
        stats.max_frontier = max(stats.max_frontier, len(queue))
        if max_states is not None and len(discovered) > max_states:
            exhausted = False
            break
        state = queue.pop()
        if state in accepted:
            continue

        # AND move: decomposition into variable-sharing components.
        components = connected_components(state.atoms, set())
        if len(components) > 1:
            component_states = {
                State.make(tuple(component), database)
                for component in components
            }
            pending = {
                c
                for c in component_states
                if not c.is_accepting() and c not in accepted
            }
            if not pending:
                mark_accepted(state)
                continue
            live = [c for c in pending if not generator.is_dead(c)]
            if len(live) == len(pending):
                and_pending[state] = len(pending)
                for component_state in pending:
                    and_parents.setdefault(component_state, []).append(state)
                    if component_state not in discovered:
                        discovered.add(component_state)
                        queue.push(component_state)
            # (a dead component sinks this AND option; OR moves remain)

        # OR moves: resolution and specialization successors.
        settled = False
        for successor in generator.successors(state):
            if successor.is_accepting() or successor in accepted:
                mark_accepted(state)
                settled = True
                break
            or_parents.setdefault(successor, []).append(state)
            if successor not in discovered:
                discovered.add(successor)
                queue.push(successor)
        if settled:
            continue

    stats.visited = len(discovered)
    return WardDecision(
        accepted=initial in accepted,
        stats=stats,
        width_bound=width_bound,
        discovered=len(discovered),
        exhausted=exhausted or initial in accepted,
    )


def decide_ward(
    query: ConjunctiveQuery,
    answer: Sequence[Constant],
    database: Database,
    program: Program,
    *,
    width_bound: Optional[int] = None,
    specialization: str = "guided",
    strategy: str = "bestfirst",
    check_membership: bool = True,
    max_states: Optional[int] = None,
    oracle: Optional[object] = None,
    use_oracle: bool = True,
) -> WardDecision:
    """Decide ``c̄ ∈ cert(q, D, Σ)`` for Σ ∈ WARD (Proposition 3.2).

    The width bound defaults to ``f_WARD(q, Σ)`` on the single-head
    normalization.
    """
    if check_membership and not is_warded(program):
        raise ValueError("program is not warded")
    normalized = program.single_head()
    bound = (
        width_bound
        if width_bound is not None
        else max(node_width_bound_ward(query, normalized), query.width())
    )
    initial = query.instantiate(tuple(answer))
    return and_or_search(
        initial,
        database,
        normalized,
        bound,
        specialization=specialization,
        strategy=strategy,
        max_states=max_states,
        oracle=oracle,
        use_oracle=use_oracle,
    )
