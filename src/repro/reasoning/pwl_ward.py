"""Query answering for WARD ∩ PWL: the Section 4.3 algorithm.

By Theorem 4.8, ``c̄ ∈ cert(q, D, Σ)`` for a piece-wise linear warded Σ
iff there is a *linear* proof tree of q w.r.t. Σ with node-width at most
``f_WARD∩PWL(q, Σ)`` whose induced CQ answers c̄ over D.  The paper's
non-deterministic algorithm walks such a tree level by level, holding a
single CQ ``p`` and applying resolution / decomposition / specialization
until ``atoms(p) ⊆ D``.

The deterministic simulation is a breadth-first search over the finite
graph of canonical configurations (:mod:`repro.reasoning.state`): the
non-deterministic machine accepts iff the empty configuration is
reachable, which is exactly the NLogSpace ⊆ reachability argument made
executable.  The search reports space statistics (visited states,
frontier peak, maximal CQ width) that the E2/E3 benchmarks use as the
space-complexity observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.levels import node_width_bound_pwl
from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from .state import Frontier, SearchStats, State, SuccessorGenerator

__all__ = ["PWLDecision", "decide_pwl_ward", "linear_proof_search"]


@dataclass
class PWLDecision:
    """Outcome of one decision-problem run."""

    accepted: bool
    stats: SearchStats
    width_bound: int
    trace: Optional[List[State]] = None   # an accepting path, if requested


def linear_proof_search(
    initial_atoms: Sequence[Atom],
    database: Database,
    program: Program,
    width_bound: int,
    *,
    specialization: str = "guided",
    strategy: str = "bestfirst",
    trace: bool = False,
    max_states: Optional[int] = None,
    oracle: Optional[object] = None,
    use_oracle: bool = True,
) -> PWLDecision:
    """Search for an accepting configuration path (a linear proof tree).

    *program* must be single-head.  ``strategy`` selects the frontier
    order (:class:`repro.reasoning.state.Frontier`): narrowest-first by
    default, or the paper-literal BFS.  ``max_states`` optionally caps
    the explored state count (the search is then incomplete but still
    sound); the benchmarks use the cap as a safety net only.  *oracle*
    optionally injects a precomputed star abstraction (reused across
    per-tuple decisions by :func:`repro.reasoning.answers.certain_answers`).
    """
    stats = SearchStats()
    generator = SuccessorGenerator(
        database,
        program,
        width_bound,
        specialization=specialization,
        stats=stats,
        oracle=oracle,
        use_oracle=use_oracle,
    )
    initial = State.make(tuple(initial_atoms), database)
    stats.max_width = max(stats.max_width, initial.width())
    if initial.width() > width_bound:
        return PWLDecision(False, stats, width_bound, None)
    if not initial.is_accepting() and generator.is_dead(initial):
        return PWLDecision(False, stats, width_bound, None)

    parents: Dict[State, Optional[State]] = {initial: None}
    queue = Frontier(strategy)
    queue.push(initial)
    stats.visited = 1

    def build_trace(state: State) -> List[State]:
        path = [state]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    if initial.is_accepting():
        return PWLDecision(
            True, stats, width_bound, build_trace(initial) if trace else None
        )

    while queue:
        stats.max_frontier = max(stats.max_frontier, len(queue))
        state = queue.pop()
        for successor in generator.successors(state):
            if successor in parents:
                continue
            parents[successor] = state
            stats.visited += 1
            if successor.is_accepting():
                return PWLDecision(
                    True,
                    stats,
                    width_bound,
                    build_trace(successor) if trace else None,
                )
            queue.push(successor)
            if max_states is not None and stats.visited >= max_states:
                return PWLDecision(False, stats, width_bound, None)

    return PWLDecision(False, stats, width_bound, None)


def decide_pwl_ward(
    query: ConjunctiveQuery,
    answer: Sequence[Constant],
    database: Database,
    program: Program,
    *,
    width_bound: Optional[int] = None,
    specialization: str = "guided",
    strategy: str = "bestfirst",
    check_membership: bool = True,
    trace: bool = False,
    max_states: Optional[int] = None,
    oracle: Optional[object] = None,
    use_oracle: bool = True,
) -> PWLDecision:
    """Decide ``c̄ ∈ cert(q, D, Σ)`` for Σ ∈ WARD ∩ PWL (Theorem 4.2).

    The program is normalized to single-head form; the width bound
    defaults to ``f_WARD∩PWL(q, Σ)`` computed on the normalized program.
    With ``check_membership`` the WARD and PWL conditions are verified
    up front (completeness of the linear search is only guaranteed
    inside the class — Theorem 5.1 shows PWL alone is undecidable).
    """
    if check_membership:
        if not is_warded(program):
            raise ValueError("program is not warded")
        if not is_piecewise_linear(program):
            raise ValueError("program is not piece-wise linear")
    normalized = program.single_head()
    bound = (
        width_bound
        if width_bound is not None
        else max(node_width_bound_pwl(query, normalized), query.width())
    )
    initial = query.instantiate(tuple(answer))
    return linear_proof_search(
        initial,
        database,
        normalized,
        bound,
        specialization=specialization,
        strategy=strategy,
        trace=trace,
        max_states=max_states,
        oracle=oracle,
        use_oracle=use_oracle,
    )
