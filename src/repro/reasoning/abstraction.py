"""The star abstraction: a polynomial over-approximation of the chase.

Replacing every existential variable by the reserved constant ``⋆``
turns a set of TGDs into a *full* (Datalog) program whose least fixpoint
over D is a homomorphic image of every chase of D: each chase atom maps
to an abstract atom with its nulls collapsed to ⋆.  The abstract
instance is therefore a sound satisfiability oracle for the
configuration searches of Section 4.3:

* if a configuration p is ever accepted, the Boolean CQ ∃p is certain,
  so every atom of p has a homomorphic match in the chase;
* every chase match of an atom α induces an abstract match where α's
  constants appear *as constants* (nulls abstract to ⋆, constants to
  themselves), so "no abstract match" proves "no chase match";
* matching treats ⋆ as a term that only variables can match — a null
  never equals a constant of the query.

Pruning configurations with an unmatchable atom collapses the negative
search space from "all syntactically reachable CQs" to "CQs the
NLogSpace machine could actually discharge", which is what makes
negative decisions fast (see E2/E4 benchmarks).
"""

from __future__ import annotations


from ..core.atoms import Atom
from ..core.instance import Database, Instance
from ..core.program import Program
from ..core.substitution import Substitution
from ..core.terms import Constant, Term
from ..core.tgd import TGD
from ..datalog.seminaive import seminaive

__all__ = ["STAR", "star_abstraction", "atom_satisfiable"]

STAR = Constant("__star__")


def _abstract_rule(tgd: TGD) -> TGD:
    """Replace the existential variables of a single-head TGD by ⋆."""
    mapping: dict[Term, Term] = {
        var: STAR for var in tgd.existential_variables()
    }
    if not mapping:
        return tgd
    subst = Substitution(mapping)
    return TGD(tgd.body, (subst.apply_atom(tgd.head[0]),), label=tgd.label)


def star_abstraction(database: Database, program: Program) -> Instance:
    """The least fixpoint of the ⋆-abstracted program over *database*.

    *program* must be single-head; the result is an over-approximation
    of every chase of the database: ``abstract ⊇ h(chase)`` where h
    collapses nulls to ⋆.
    """
    if not program.is_single_head():
        raise ValueError("star_abstraction needs a single-head program")
    abstracted = Program([_abstract_rule(t) for t in program])
    return seminaive(database, abstracted).instance


def atom_satisfiable(atom: Atom, abstract: Instance) -> bool:
    """Could *atom* (constants + variables) have a chase match?

    Checks for an abstract atom agreeing with the pattern: constants
    must match exactly (⋆ does not match a constant — a labeled null is
    never equal to a constant), variables match anything, with repeated
    variables kept consistent.  ``Instance.matching`` implements exactly
    this since ⋆ is an ordinary constant of the abstract instance.
    """
    return next(iter(abstract.matching(atom)), None) is not None
