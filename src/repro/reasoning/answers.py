"""The public query-answering facade.

``certain_answers(q, D, Σ)`` computes cert(q, D, Σ), dispatching on the
class of Σ:

* full single-head programs → semi-naive Datalog evaluation (exact),
* WARD ∩ PWL → the linear proof-tree search of Theorem 4.8,
* WARD → the AND-OR (alternating) search of Theorem 4.9,
* anything else → the chase, accepted only if it saturates (CQ
  answering under arbitrary TGDs — even PWL alone, Theorem 5.1 — is
  undecidable, so no complete procedure exists to fall back to).

For the proof-tree engines the answer *set* is assembled from per-tuple
decisions.  Two auxiliary structures split the work:

* the **star abstraction** (an always-terminating Datalog fixpoint that
  over-approximates every chase) bounds the per-variable candidate
  constants — any certain answer's homomorphism into the chase survives
  the null-collapse into the abstraction with its constants intact, so
  the pools drawn from the abstraction are *complete*;
* a bounded **chase probe** (a sound under-approximation) settles the
  cheap positives, so only the remainder needs a decision run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..chase.runner import chase
from ..chase.termination import DepthPolicy
from ..core.instance import Database, Instance
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from .pwl_ward import decide_pwl_ward
from .ward import decide_ward

__all__ = [
    "certain_answers",
    "is_certain_answer",
    "stream_proof_tree_answers",
    "probe_instance",
    "candidate_tuples",
    "UnsupportedProgramError",
    "AnswerReport",
]


class UnsupportedProgramError(ValueError):
    """Raised when no sound-and-complete method applies to the program."""


@dataclass
class AnswerReport:
    """Answers plus provenance of how they were obtained."""

    answers: Set[Tuple[Constant, ...]]
    method: str
    probe_answers: int = 0       # answers settled by the chase probe alone
    decided_tuples: int = 0      # candidate tuples sent to a decision engine


def probe_instance(
    database: Database,
    program: Program,
    probe_depth: int = 3,
    probe_atoms: int = 20000,
    store="instance",
) -> Instance:
    """A bounded chase used to seed candidates (sound under-approximation).

    Public hook shared by the per-tuple drivers: the streaming facade
    below and :func:`repro.parallel.executor.parallel_certain_answers`
    both split the work into "probe settles the cheap positives, a
    decision engine settles the rest", and this is the probe half.
    ``store`` selects the probe's backend — the parallel executor runs
    it on the sharded store so the probe answers can be evaluated
    shard-parallel.
    """
    result = chase(
        database,
        program,
        variant="restricted",
        policy=DepthPolicy(probe_depth),
        max_atoms=probe_atoms,
        store=store,
    )
    return result.instance


def candidate_tuples(
    query: ConjunctiveQuery, abstraction: Instance
) -> Set[Tuple[Constant, ...]]:
    """All output tuples the star abstraction makes conceivable.

    Each output variable can only take constants seen at its positions
    in the abstract instance.  This pool is *complete*: a certain
    answer c̄ has a homomorphism h from q into the chase with
    h(output) = c̄, and composing h with the null-collapse γ (nulls ↦ ⋆,
    constants fixed) lands in the abstraction with c̄ still at the same
    positions.  The ⋆ constant itself is excluded — it stands for
    nulls, which are never certain answers.
    """
    from .abstraction import STAR

    per_variable: Dict[Variable, Set[Constant]] = {}
    for var in dict.fromkeys(query.output):
        candidates: Optional[Set[Constant]] = None
        for atom in query.atoms:
            for index, term in enumerate(atom.args):
                if term != var:
                    continue
                seen = {
                    stored.args[index]
                    for stored in abstraction.with_predicate(atom.predicate)
                    if isinstance(stored.args[index], Constant)
                    and stored.args[index] != STAR
                }
                candidates = seen if candidates is None else candidates & seen
        per_variable[var] = candidates or set()

    unique_vars = list(dict.fromkeys(query.output))
    pools = [sorted(per_variable[v], key=str) for v in unique_vars]
    tuples: Set[Tuple[Constant, ...]] = set()
    for combo in itertools.product(*pools):
        assignment = dict(zip(unique_vars, combo))
        tuples.add(tuple(assignment[v] for v in query.output))
    return tuples


# Backwards-compatible aliases: these started as module internals and
# external drivers imported them by their private names.
_probe_instance = probe_instance
_candidate_tuples = candidate_tuples


def stream_proof_tree_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    method: str,
    probe_depth: int = 3,
    probe_atoms: int = 20000,
    abstraction: Optional[Instance] = None,
    stats=None,
    **engine_kwargs,
):
    """Yield ``cert(q, D, Σ)`` tuples via the proof-tree engines, lazily.

    The star abstraction (computed once — it depends only on D and Σ —
    and reusable across queries, so callers with a cache pass it as
    *abstraction*) bounds the candidate tuples completely and doubles as
    the shared pruning oracle; the bounded chase probe settles the cheap
    positives, which stream out first, and only the remaining candidates
    go through a per-tuple decision run, each accepted tuple yielded as
    soon as its run returns.  *stats*, if given, receives
    ``probe_answers`` and ``decided_tuples`` attributes as they accrue.
    """
    if method not in ("pwl", "ward"):
        raise ValueError(f"unknown method {method!r}")
    from .abstraction import star_abstraction

    if abstraction is None:
        oracle = engine_kwargs.get("oracle")
        abstraction = (
            oracle
            if isinstance(oracle, Instance)
            else star_abstraction(database, program.single_head())
        )
    if "oracle" not in engine_kwargs and engine_kwargs.get("use_oracle", True):
        engine_kwargs["oracle"] = abstraction
    probe = probe_instance(database, program, probe_depth, probe_atoms)
    probe_answers = query.evaluate(probe)
    if stats is not None:
        stats.probe_answers = len(probe_answers)
    for answer in sorted(probe_answers, key=str):
        yield answer
    decide = decide_pwl_ward if method == "pwl" else decide_ward
    candidates = candidate_tuples(query, abstraction)
    for candidate in sorted(candidates - probe_answers, key=str):
        if stats is not None:
            stats.decided_tuples += 1
        if decide(
            query, candidate, database, program, **engine_kwargs
        ).accepted:
            yield candidate


def certain_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    method: str = "auto",
    probe_depth: int = 3,
    probe_atoms: int = 20000,
    report: bool = False,
    **engine_kwargs,
):
    """Compute ``cert(q, D, Σ)``.

    ``method``: ``"auto"`` (dispatch on the program class), ``"datalog"``,
    ``"pwl"``, ``"ward"``, ``"chase"``, or ``"network"``.  With
    ``report=True`` an :class:`AnswerReport` is returned instead of the
    bare answer set.  Engine keyword arguments (``width_bound``,
    ``specialization``, ``max_depth``, ...) are forwarded to the
    decision engines.  ``store`` selects the fact-storage backend for
    the materializing methods; the proof-tree engines hold bounded CQs,
    not instances, so they ignore it.

    Thin deprecated wrapper: engine selection lives in
    :class:`repro.api.Planner` and execution in :mod:`repro.api`; prefer
    :class:`repro.api.Session`, which additionally caches the compiled
    analysis, abstraction, and materializations across queries.
    """
    from ..api import compile_program
    from ..api.execution import execute_plan
    from ..api.planner import Planner

    store = engine_kwargs.pop("store", "instance")
    plan = Planner().plan(
        compile_program(program),
        query,
        method=method,
        store=store,
        probe_depth=probe_depth,
        probe_atoms=probe_atoms,
        **engine_kwargs,
    )
    stream = execute_plan(plan, database)
    answers = stream.to_set()
    if report:
        return AnswerReport(
            answers=set(answers),
            method=plan.method,
            probe_answers=stream.stats.probe_answers,
            decided_tuples=stream.stats.decided_tuples,
        )
    return set(answers)


def is_certain_answer(
    query: ConjunctiveQuery,
    answer: Sequence[Constant],
    database: Database,
    program: Program,
    *,
    method: str = "auto",
    **engine_kwargs,
) -> bool:
    """Decide ``c̄ ∈ cert(q, D, Σ)`` (the paper's decision problem)."""
    if method == "auto":
        if is_warded(program):
            method = "pwl" if is_piecewise_linear(program) else "ward"
        else:
            raise UnsupportedProgramError(
                "no complete decision procedure outside WARD"
            )
    if method == "pwl":
        return decide_pwl_ward(
            query, answer, database, program, **engine_kwargs
        ).accepted
    if method == "ward":
        return decide_ward(
            query, answer, database, program, **engine_kwargs
        ).accepted
    raise ValueError(f"unknown method {method!r}")
