"""Reasoning algorithms: the space-bounded searches of Section 4.3 and
the public certain-answer facade."""

from .certificate import (
    Certificate,
    CertificateError,
    certified_decision,
    extract_certificate,
    verify_certificate,
)
from .answers import (
    AnswerReport,
    UnsupportedProgramError,
    certain_answers,
    is_certain_answer,
    stream_proof_tree_answers,
)
from .pwl_ward import PWLDecision, decide_pwl_ward, linear_proof_search
from .state import Frontier, SearchStats, State, SuccessorGenerator
from .ward import WardDecision, and_or_search, decide_ward

__all__ = [
    "certain_answers",
    "is_certain_answer",
    "stream_proof_tree_answers",
    "AnswerReport",
    "UnsupportedProgramError",
    "decide_pwl_ward",
    "linear_proof_search",
    "PWLDecision",
    "decide_ward",
    "and_or_search",
    "WardDecision",
    "State",
    "SuccessorGenerator",
    "Frontier",
    "SearchStats",
    "Certificate",
    "CertificateError",
    "certified_decision",
    "extract_certificate",
    "verify_certificate",
]
