"""Configuration states of the space-bounded algorithms (Section 4.3).

The paper's non-deterministic algorithm maintains a Boolean CQ ``p``
whose output variables have been instantiated by the candidate answer
constants.  A deterministic simulation explores the graph of such CQs;
to make that graph finite the CQs are *canonicalized*: variables are
renamed into a fixed pool (:mod:`repro.prooftree.canonical`), so two CQs
equal up to variable renaming are one state.

:class:`State` is an immutable canonical atom tuple.  The successor
operations (resolution ``r``, decomposition ``d``, specialization ``s``)
live in :class:`SuccessorGenerator`, shared by the linear search for
WARD ∩ PWL and the AND-OR search for WARD:

* ``r`` — all σ-resolvents through MGCUs (Definition 4.3), capped at
  the node-width bound;
* ``d`` — dropping ground atoms present in D (the decomposition that
  splits database leaves off; always valid since ground atoms share no
  variables).  Applied eagerly on state creation: a ground atom of D is
  never useful to keep (see DESIGN.md §3);
* ``s`` — specializations of single variables to constants of dom(D).
  Two modes: *guided* (bind variables by matching one atom against the
  database — a composition of paper specializations with branching
  proportional to index hits) and *exhaustive* (the paper-literal
  var × dom(D) enumeration, used for cross-validation).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom, atoms_variables
from ..core.instance import Database
from ..core.program import Program
from ..core.substitution import Substitution
from ..core.terms import Term, Variable
from ..prooftree.canonical import canonical_form
from ..prooftree.chunk import chunk_unifiers

__all__ = ["State", "SuccessorGenerator", "SearchStats", "Frontier"]


@dataclass(frozen=True)
class State:
    """A canonicalized Boolean CQ with constants (a search configuration)."""

    atoms: tuple[Atom, ...]

    @staticmethod
    def make(atoms: Sequence[Atom], database: Optional[Database] = None) -> "State":
        """Canonicalize *atoms* (eagerly dropping D-facts if *database* given)."""
        kept = tuple(atoms)
        if database is not None:
            kept = tuple(a for a in kept if not (a.is_fact() and a in database))
        return State(canonical_form(kept))

    def is_accepting(self) -> bool:
        """The empty CQ: every atom was discharged against the database."""
        return not self.atoms

    def width(self) -> int:
        return len(self.atoms)

    def variables(self) -> set[Variable]:
        return atoms_variables(self.atoms)

    def __str__(self) -> str:
        return "{" + ", ".join(str(a) for a in self.atoms) + "}"


@dataclass
class SearchStats:
    """Metering shared by both search algorithms.

    ``visited`` approximates the *space* the non-deterministic algorithm
    sweeps (distinct configurations), ``max_frontier`` the working-set
    peak of the deterministic simulation, ``max_width`` the largest CQ
    ever held — the quantity the node-width bounds of Theorems 4.8/4.9
    cap.
    """

    expanded: int = 0
    generated: int = 0
    visited: int = 0
    max_frontier: int = 0
    max_width: int = 0
    resolution_steps: int = 0
    specialization_steps: int = 0
    width_rejections: int = 0
    dead_pruned: int = 0


class Frontier:
    """The exploration frontier of the deterministic simulations.

    Both strategies explore the same finite configuration graph, so the
    *decision* is strategy-independent; only the order (and therefore
    how much of the graph is materialized before an accepting
    configuration is found) changes:

    * ``"bestfirst"`` (default) pops the narrowest CQ first.  Narrow
      configurations are the ones closest to being discharged against
      the database, so productive runs — which by Theorems 4.8/4.9
      oscillate between one resolution widening and one
      specialization/decomposition narrowing — are followed eagerly
      while wide speculative resolvent chains wait.
    * ``"bfs"`` is the paper-literal level-by-level simulation of the
      non-deterministic machine (kept for cross-validation).
    """

    STRATEGIES = ("bestfirst", "bfs")

    def __init__(self, strategy: str = "bestfirst"):
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown search strategy {strategy!r}; "
                f"expected one of {self.STRATEGIES}"
            )
        self.strategy = strategy
        self._deque: Deque[State] = deque()
        self._heap: List[Tuple[int, int, State]] = []
        self._tiebreak = itertools.count()

    def push(self, state: State) -> None:
        if self.strategy == "bfs":
            self._deque.append(state)
        else:
            heapq.heappush(
                self._heap, (state.width(), next(self._tiebreak), state)
            )

    def pop(self) -> State:
        if self.strategy == "bfs":
            return self._deque.popleft()
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._deque) + len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._deque) or bool(self._heap)


class SuccessorGenerator:
    """Produces ``r``/``s`` successors of a state (with eager ``d``)."""

    def __init__(
        self,
        database: Database,
        program: Program,
        width_bound: int,
        *,
        specialization: str = "guided",
        stats: Optional[SearchStats] = None,
        oracle: Optional[object] = None,
        use_oracle: bool = True,
    ):
        if specialization not in ("guided", "exhaustive", "both"):
            raise ValueError(f"unknown specialization mode {specialization!r}")
        if not program.is_single_head():
            raise ValueError(
                "SuccessorGenerator needs a single-head program; call "
                "Program.single_head() first"
            )
        self.database = database
        self.program = program
        self.width_bound = width_bound
        self.specialization = specialization
        self.stats = stats if stats is not None else SearchStats()
        self._domain = sorted(
            database.constants(), key=lambda c: (type(c.value).__name__, str(c.value))
        )
        self._head_predicates = program.head_predicates()
        if oracle is not None:
            self._oracle = oracle
        elif use_oracle:
            from .abstraction import star_abstraction

            self._oracle = star_abstraction(database, program)
        else:
            self._oracle = None

    # -- pruning ----------------------------------------------------------

    def is_dead(self, state: State) -> bool:
        """True iff *state* can never reach the accepting configuration.

        Acceptance of a configuration implies its Boolean CQ is certain,
        which requires a chase match for every atom.  With the star-
        abstraction oracle (:mod:`repro.reasoning.abstraction`) any atom
        without an abstract match proves the state dead.  Without the
        oracle a weaker check applies: an atom over a predicate that
        never occurs in a rule head cannot be resolved away, so it must
        match the database directly.  Both prunes keep the deterministic
        simulation within the configurations the NLogSpace machine could
        actually discharge.
        """
        if self._oracle is not None:
            from .abstraction import atom_satisfiable

            for atom in state.atoms:
                if not atom_satisfiable(atom, self._oracle):
                    self.stats.dead_pruned += 1
                    return True
            return False
        for atom in state.atoms:
            if atom.predicate in self._head_predicates:
                continue
            if next(iter(self.database.matching(atom)), None) is None:
                self.stats.dead_pruned += 1
                return True
        return False

    # -- operations ----------------------------------------------------------

    def resolutions(self, state: State) -> Iterator[State]:
        """All σ-resolvents within the width bound (operation ``r``)."""
        for tgd in self.program:
            renamed = tgd.rename("r")
            for unifier in chunk_unifiers(state.atoms, set(), renamed):
                s1 = set(unifier.s1)
                kept = [a for a in state.atoms if a not in s1]
                raw = unifier.gamma.apply_atoms(tuple(kept) + renamed.body)
                body = tuple(dict.fromkeys(raw))
                if len(body) > self.width_bound:
                    self.stats.width_rejections += 1
                    continue
                self.stats.resolution_steps += 1
                yield State.make(body, self.database)

    def specializations(self, state: State) -> Iterator[State]:
        """Specialization successors (operation ``s``)."""
        if self.specialization in ("guided", "both"):
            yield from self._guided_specializations(state)
        if self.specialization in ("exhaustive", "both"):
            yield from self._exhaustive_specializations(state)

    def _guided_specializations(self, state: State) -> Iterator[State]:
        """Bind the variables of one atom by matching it against D.

        Matching atom α against a database fact f yields the substitution
        θ with θ(α) = f; θ is a composition of single-variable
        specializations, and applying it makes α droppable — exactly the
        specializations a successful run needs before a ``d`` step.
        """
        seen: Set[Substitution] = set()
        for atom in state.atoms:
            if not atom.variables():
                continue
            for fact in self.database.matching(atom):
                theta = self._match_substitution(atom, fact)
                if theta is None or theta in seen:
                    continue
                seen.add(theta)
                self.stats.specialization_steps += 1
                yield State.make(theta.apply_atoms(state.atoms), self.database)

    def _exhaustive_specializations(self, state: State) -> Iterator[State]:
        """The paper-literal enumeration: each variable to each constant."""
        for var in sorted(state.variables(), key=lambda v: v.name):
            for constant in self._domain:
                theta = Substitution({var: constant})
                self.stats.specialization_steps += 1
                yield State.make(theta.apply_atoms(state.atoms), self.database)

    @staticmethod
    def _match_substitution(atom: Atom, fact: Atom) -> Optional[Substitution]:
        mapping: Dict[Term, Term] = {}
        for a_term, f_term in zip(atom.args, fact.args):
            if isinstance(a_term, Variable):
                bound = mapping.get(a_term)
                if bound is not None and bound != f_term:
                    return None
                mapping[a_term] = f_term
            elif a_term != f_term:
                return None
        return Substitution(mapping)

    def successors(self, state: State) -> Iterator[State]:
        """All live ``r``/``s`` successors (eager ``d`` inside State.make)."""
        self.stats.expanded += 1
        for successor in self.resolutions(state):
            self.stats.generated += 1
            self.stats.max_width = max(self.stats.max_width, successor.width())
            if not self.is_dead(successor):
                yield successor
        for successor in self.specializations(state):
            self.stats.generated += 1
            self.stats.max_width = max(self.stats.max_width, successor.width())
            if not self.is_dead(successor):
                yield successor
