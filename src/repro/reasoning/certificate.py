"""Certified answers: verifiable witnesses for positive decisions.

The paper's algorithm (Section 4.3) accepts by *constructing* a linear
proof tree level by level; the accepting run itself is therefore a
checkable certificate of ``c̄ ∈ cert(q, D, Σ)``.  This module turns the
trace of :func:`repro.reasoning.pwl_ward.linear_proof_search` into an
explicit :class:`Certificate` — the sequence of configurations together
with the operation (resolution ``r``, specialization ``s``; the ``d``
drops of database facts are folded into each configuration) that links
every consecutive pair — and re-verifies it from scratch:

* the first configuration is the instantiated query (modulo the eager
  drop of database facts);
* every transition is re-derivable as a resolution or specialization
  successor of its predecessor;
* every configuration respects the claimed node-width bound;
* the final configuration is the empty CQ.

Verification shares no state with the search that produced the
certificate (a fresh :class:`SuccessorGenerator` without the pruning
oracle re-derives every step), so a verifier can audit an answer
without trusting the decision engine — the practical face of
"acceptance = existence of a bounded-width linear proof tree"
(Theorem 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from .pwl_ward import decide_pwl_ward
from .state import State, SuccessorGenerator

__all__ = [
    "Certificate",
    "CertificateError",
    "certified_decision",
    "extract_certificate",
    "verify_certificate",
]


class CertificateError(ValueError):
    """Raised when a certificate fails verification."""


@dataclass(frozen=True)
class Certificate:
    """An accepting run: configurations plus the linking operations.

    ``operations[i]`` produced ``states[i + 1]`` from ``states[i]``;
    its value is ``"resolution"`` or ``"specialization"``.
    """

    query: ConjunctiveQuery
    answer: Tuple[Constant, ...]
    states: Tuple[State, ...]
    operations: Tuple[str, ...]
    width_bound: int

    def __len__(self) -> int:
        return len(self.states)

    def max_width(self) -> int:
        return max((state.width() for state in self.states), default=0)


def _classify_transition(
    generator: SuccessorGenerator, state: State, successor: State
) -> Optional[str]:
    """Which operation derives *successor* from *state*, if any?"""
    for candidate in generator.resolutions(state):
        if candidate == successor:
            return "resolution"
    for candidate in generator.specializations(state):
        if candidate == successor:
            return "specialization"
    return None


def extract_certificate(
    query: ConjunctiveQuery,
    answer: Sequence[Constant],
    database: Database,
    program: Program,
    *,
    width_bound: Optional[int] = None,
    **search_kwargs,
) -> Optional[Certificate]:
    """Run the decision and package the accepting trace, if any.

    Returns ``None`` for negative decisions.  The returned certificate
    has already been labeled with operations (re-derived step by step),
    but callers should still :func:`verify_certificate` if they do not
    trust this process.
    """
    decision = decide_pwl_ward(
        query,
        answer,
        database,
        program,
        width_bound=width_bound,
        trace=True,
        **search_kwargs,
    )
    if not decision.accepted or decision.trace is None:
        return None
    normalized = program.single_head()
    # "both" covers guided and paper-literal specializations, whichever
    # mode the search actually ran with.
    generator = SuccessorGenerator(
        database, normalized, decision.width_bound,
        specialization="both", use_oracle=False,
    )
    operations: List[str] = []
    for state, successor in zip(decision.trace, decision.trace[1:]):
        operation = _classify_transition(generator, state, successor)
        if operation is None:
            raise CertificateError(
                "search produced an unexplainable transition "
                f"{state} → {successor}"
            )
        operations.append(operation)
    return Certificate(
        query=query,
        answer=tuple(answer),
        states=tuple(decision.trace),
        operations=tuple(operations),
        width_bound=decision.width_bound,
    )


def verify_certificate(
    certificate: Certificate,
    database: Database,
    program: Program,
) -> bool:
    """Re-check a certificate from scratch; raise CertificateError on
    any violation, return True otherwise.

    The verifier is deliberately independent: it rebuilds the initial
    configuration from (q, c̄, D), re-derives every transition with a
    fresh oracle-free successor generator, and checks the width bound
    and the accepting end.  Its cost is linear in the certificate
    length times the per-step successor enumeration — no search.
    """
    if not certificate.states:
        raise CertificateError("certificate has no configurations")
    if len(certificate.operations) != len(certificate.states) - 1:
        raise CertificateError(
            "operations do not align with configuration transitions"
        )

    normalized = program.single_head()
    expected_initial = State.make(
        certificate.query.instantiate(certificate.answer), database
    )
    if certificate.states[0] != expected_initial:
        raise CertificateError(
            "initial configuration does not match the instantiated query"
        )

    for index, state in enumerate(certificate.states):
        if state.width() > certificate.width_bound:
            raise CertificateError(
                f"configuration {index} exceeds the width bound "
                f"({state.width()} > {certificate.width_bound})"
            )

    generator = SuccessorGenerator(
        database, normalized, certificate.width_bound,
        specialization="both", use_oracle=False,
    )
    for index, (state, successor, claimed) in enumerate(
        zip(certificate.states, certificate.states[1:],
            certificate.operations)
    ):
        derived = _classify_transition(generator, state, successor)
        if derived is None:
            raise CertificateError(
                f"transition {index} is not derivable: {state} → {successor}"
            )
        if derived != claimed and claimed not in (
            "resolution", "specialization"
        ):
            raise CertificateError(
                f"transition {index} claims unknown operation {claimed!r}"
            )

    if not certificate.states[-1].is_accepting():
        raise CertificateError("final configuration is not the empty CQ")
    return True


def certified_decision(
    query: ConjunctiveQuery,
    answer: Sequence[Constant],
    database: Database,
    program: Program,
    **search_kwargs,
) -> Tuple[bool, Optional[Certificate]]:
    """Decide and, for positives, return an independently verified
    certificate.

    Positive answers come with a certificate that has passed
    :func:`verify_certificate`; negative answers return ``(False,
    None)`` (negatives have no succinct witness — NLogSpace is closed
    under complement, but the Immerman–Szelepcsényi certificate is far
    beyond practical interest here).
    """
    certificate = extract_certificate(
        query, answer, database, program, **search_kwargs
    )
    if certificate is None:
        return False, None
    verify_certificate(certificate, database, program)
    return True, certificate
