"""repro.workloads — trace-record/replay load harness.

Reproducible, skew-shaped traffic for the reasoning engine: a versioned
NDJSON trace schema (:mod:`.trace`), seeded zipfian generators over
benchsuite key spaces (:mod:`.generate`), closed/open-loop replay
drivers with per-op latency accounting and ground-truth answer
verification (:mod:`.replay`), and the shared log-bucket latency
histogram (:mod:`.latency`) the benchmarks report percentiles from.

``python -m repro trace generate|replay|summarize`` is the CLI surface;
``benchmarks/bench_trace_replay.py`` the measurement matrix.
"""

from .generate import (
    MIXES,
    TRACE_FAMILIES,
    ZipfianSampler,
    generate_trace,
    materialize_scenario,
)
from .latency import LatencyHistogram
from .replay import (
    ClientTarget,
    ReplayResult,
    ServiceTarget,
    SessionTarget,
    replay_trace,
)
from .trace import OP_KINDS, TRACE_SCHEMA, Trace, TraceError, TraceOp

__all__ = [
    "ClientTarget",
    "LatencyHistogram",
    "MIXES",
    "OP_KINDS",
    "ReplayResult",
    "ServiceTarget",
    "SessionTarget",
    "TRACE_FAMILIES",
    "TRACE_SCHEMA",
    "Trace",
    "TraceError",
    "TraceOp",
    "ZipfianSampler",
    "generate_trace",
    "materialize_scenario",
    "replay_trace",
]
