"""The versioned NDJSON trace schema: recorded op streams for replay.

A trace is the unit of workload exchange — one file, replayable against
any engine × store × rewrite × exec cell (or a live server) by
:mod:`repro.workloads.replay`.  The on-disk form is newline-delimited
JSON: a header record naming the schema version and carrying the
generator's metadata, then one record per timestamped operation::

    {"meta": {...}, "schema": "repro/trace/v1"}
    {"at": 0.0, "index": 0, "key": "n3", "kind": "query",
     "query": "q(X) :- t(n3, X)."}
    {"at": 0.005, "changes": "+e(n1,n4).", "index": 1, "kind": "update"}

Three op kinds:

* ``query`` — a conjunctive query (typically with a bound constant
  sampled from the workload's key skew);
* ``update`` — one EDB change batch in the ``+atom`` / ``-atom``
  textual delta format :meth:`repro.incremental.ChangeSet.parse` reads;
* ``point_lookup`` — a fully-bound Boolean query (answer ``()`` or
  nothing): the "is this edge live" shape of serving traffic.

Records are serialized with sorted keys and compact separators, so the
same :class:`Trace` always dumps to the identical bytes — seeded
generation being byte-reproducible is asserted by the benchmark, and
the property suite pins ``loads(dumps(t)) == t``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

__all__ = ["OP_KINDS", "TRACE_SCHEMA", "Trace", "TraceError", "TraceOp"]

#: Bump when the NDJSON layout changes incompatibly.
TRACE_SCHEMA = "repro/trace/v1"

#: The op vocabulary of schema v1.
OP_KINDS = ("query", "update", "point_lookup")

#: Record fields (header and op) the validator accepts; anything else
#: is a typo or a future schema this reader does not understand.
_OP_FIELDS = frozenset({"index", "at", "kind", "query", "changes", "key"})
_HEADER_FIELDS = frozenset({"schema", "meta"})


class TraceError(ValueError):
    """A malformed trace file or record."""


@dataclass(frozen=True)
class TraceOp:
    """One timestamped operation of a recorded workload.

    ``at`` is the op's scheduled offset (seconds from trace start) —
    the open-loop replay driver paces against it; closed-loop replay
    ignores it.  ``key`` records which skew-sampled key produced the
    op, for observability only (summaries report key concentration).
    """

    index: int
    at: float
    kind: str
    query: str = ""
    changes: str = ""
    key: str = ""

    def as_record(self) -> dict:
        record = {"index": self.index, "at": self.at, "kind": self.kind}
        if self.query:
            record["query"] = self.query
        if self.changes:
            record["changes"] = self.changes
        if self.key:
            record["key"] = self.key
        return record

    @classmethod
    def from_record(cls, record: dict, *, line: int = 0) -> "TraceOp":
        """Validate and build one op from its JSON record."""
        where = f"line {line}: " if line else ""
        if not isinstance(record, dict):
            raise TraceError(f"{where}op record must be an object")
        unknown = set(record) - _OP_FIELDS
        if unknown:
            raise TraceError(
                f"{where}unknown op field(s) {sorted(unknown)}; "
                f"schema {TRACE_SCHEMA} accepts {sorted(_OP_FIELDS)}"
            )
        for name in ("index", "at", "kind"):
            if name not in record:
                raise TraceError(f"{where}op record missing {name!r}")
        index, at, kind = record["index"], record["at"], record["kind"]
        if not isinstance(index, int) or index < 0:
            raise TraceError(f"{where}index must be a non-negative integer")
        if not isinstance(at, (int, float)) or at < 0:
            raise TraceError(f"{where}at must be a non-negative number")
        if kind not in OP_KINDS:
            raise TraceError(
                f"{where}unknown op kind {kind!r}; "
                f"choose from {', '.join(OP_KINDS)}"
            )
        query = record.get("query", "")
        changes = record.get("changes", "")
        if kind in ("query", "point_lookup"):
            if not query:
                raise TraceError(f"{where}{kind} op needs a 'query' field")
            if changes:
                raise TraceError(f"{where}{kind} op cannot carry 'changes'")
        else:  # update
            if not changes:
                raise TraceError(f"{where}update op needs a 'changes' field")
            if query:
                raise TraceError(f"{where}update op cannot carry 'query'")
        return cls(
            index=index,
            at=float(at),
            kind=kind,
            query=query,
            changes=changes,
            key=record.get("key", ""),
        )


@dataclass(frozen=True)
class Trace:
    """A recorded workload: header metadata plus the op stream."""

    ops: Tuple[TraceOp, ...]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    # -- serialization -----------------------------------------------------

    def dumps(self) -> str:
        """The canonical NDJSON text (byte-stable for equal traces)."""
        lines = [
            json.dumps(
                {"schema": TRACE_SCHEMA, "meta": self.meta},
                sort_keys=True,
                separators=(",", ":"),
            )
        ]
        lines.extend(
            json.dumps(op.as_record(), sort_keys=True, separators=(",", ":"))
            for op in self.ops
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse and validate NDJSON trace text."""
        header = None
        ops: List[TraceOp] = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"line {line_number}: not valid JSON: {error}"
                ) from error
            if header is None:
                if not isinstance(record, dict) or "schema" not in record:
                    raise TraceError(
                        f"line {line_number}: the first record must be a "
                        'header with a "schema" field'
                    )
                unknown = set(record) - _HEADER_FIELDS
                if unknown:
                    raise TraceError(
                        f"line {line_number}: unknown header field(s) "
                        f"{sorted(unknown)}"
                    )
                if record["schema"] != TRACE_SCHEMA:
                    raise TraceError(
                        f"line {line_number}: unsupported trace schema "
                        f"{record['schema']!r}; this reader understands "
                        f"{TRACE_SCHEMA!r}"
                    )
                header = record
                continue
            op = TraceOp.from_record(record, line=line_number)
            if op.index != len(ops):
                raise TraceError(
                    f"line {line_number}: op index {op.index} out of order "
                    f"(expected {len(ops)})"
                )
            ops.append(op)
        if header is None:
            raise TraceError("empty trace: no header record")
        meta = header.get("meta", {})
        if not isinstance(meta, dict):
            raise TraceError("header 'meta' must be an object")
        return cls(ops=tuple(ops), meta=meta)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise TraceError(f"cannot read {path}: {error}") from error
        return cls.loads(text)

    # -- validation and summary --------------------------------------------

    def validate(self) -> None:
        """Deep validation: every query parses, every delta parses.

        Structural validation happens on load; this pass additionally
        runs the language parsers, so a replay never discovers a typo'd
        atom halfway through a million-op stream.
        """
        from ..incremental import ChangeSet
        from ..lang.parser import parse_query

        for op in self.ops:
            try:
                if op.kind == "update":
                    if not ChangeSet.parse(op.changes):
                        raise ValueError("empty change batch")
                else:
                    query = parse_query(op.query)
                    if op.kind == "point_lookup" and not query.is_boolean():
                        raise ValueError(
                            "point_lookup queries must be Boolean "
                            "(no output variables)"
                        )
            except ValueError as error:
                raise TraceError(f"op {op.index}: {error}") from error

    def summary(self) -> dict:
        """Counts, duration, and key-concentration figures."""
        kinds: Dict[str, int] = {kind: 0 for kind in OP_KINDS}
        keys: Dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
            if op.key:
                keys[op.key] = keys.get(op.key, 0) + 1
        top = sorted(keys.items(), key=lambda item: (-item[1], item[0]))[:5]
        keyed = sum(keys.values())
        return {
            "schema": TRACE_SCHEMA,
            "ops": len(self.ops),
            "kinds": kinds,
            "duration_seconds": max((op.at for op in self.ops), default=0.0),
            "distinct_keys": len(keys),
            "top_keys": [
                {
                    "key": key,
                    "count": count,
                    "fraction": count / keyed if keyed else 0.0,
                }
                for key, count in top
            ],
            "meta": dict(self.meta),
        }
