"""Trace replay: drive a recorded workload against a reasoning target.

Two pacing disciplines over the same op stream:

* **closed loop** — N workers pull ops as fast as the target answers
  them; throughput is the measurement (how many ops/sec the cell
  sustains);
* **open loop** — ops are released on the trace's ``at`` schedule (or a
  ``rate`` override); *lateness* is the measurement (how far behind the
  schedule the target falls — the latency a user would see at that
  arrival rate, not the latency the target would prefer to be judged by).

Three target adapters:

* :class:`SessionTarget` — an in-process :class:`repro.api.Session`.
  The session mutates its EDB in place (no MVCC), so the adapter
  serializes ops through a lock: a valid single-threaded baseline, and
  honest queueing latency when replayed with many workers;
* :class:`ServiceTarget` — an in-process
  :class:`repro.server.ReasoningService`: genuinely concurrent,
  snapshot-isolated, every result stamped with its admitted version;
* :class:`ClientTarget` — a live ``repro serve`` daemon over real
  sockets, one :class:`~repro.server.ReasoningClient` per worker.

Updates are applied in trace order (a sequencer blocks an update until
its predecessors landed — queries never wait), so the trace's
cumulative EDB states map 1:1 onto the target's version numbers.  With
``verify=True`` every query/point-lookup answer is digested and checked
against a from-scratch evaluation over the EDB state of its *admitted*
version — replay is a correctness harness first, a load harness second.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..benchsuite import Scenario, answer_digest
from ..core.instance import Database
from ..incremental import ChangeSet
from ..lang.parser import parse_query
from .generate import materialize_scenario
from .latency import LatencyHistogram
from .trace import OP_KINDS, Trace

__all__ = [
    "ClientTarget",
    "ReplayResult",
    "ServiceTarget",
    "SessionTarget",
    "replay_trace",
]


# -- target adapters -------------------------------------------------------


class SessionTarget:
    """An in-process :class:`~repro.api.Session` behind a lock.

    The session's EDB is one mutable store — a query racing an update
    would read a half-applied batch — so every op runs to completion
    under the lock.  Latency recorded under contention is queueing
    latency, which is exactly what a single-writer engine would serve.
    """

    name = "session"

    def __init__(
        self,
        session,
        *,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
    ):
        self._session = session
        self._method = method
        self._rewrite = rewrite
        self._exec_mode = exec_mode
        self._lock = threading.Lock()

    @classmethod
    def for_scenario(cls, scenario: Scenario, *, store="instance", **kwargs):
        from ..api import Session

        session = Session(store=store)
        session.compile(scenario.program)
        session.add_facts(scenario.database)
        return cls(session, **kwargs)

    def worker(self) -> "SessionTarget":
        return self

    def baseline_version(self) -> int:
        return self._session.edb_version

    def query(self, text: str) -> Tuple[Tuple[Tuple[str, ...], ...], int]:
        with self._lock:
            rows = self._session.query(
                text,
                method=self._method,
                rewrite=self._rewrite,
                exec_mode=self._exec_mode,
            ).to_sorted()
            version = self._session.edb_version
        return (
            tuple(tuple(str(term) for term in row) for row in rows),
            version,
        )

    def update(self, changes: str) -> int:
        with self._lock:
            return self._session.apply(ChangeSet.parse(changes)).version

    def close(self) -> None:
        pass


class ServiceTarget:
    """An in-process :class:`~repro.server.ReasoningService`.

    Thread-safe and snapshot-isolated by construction; every answer
    carries the version it was admitted under.
    """

    name = "service"

    def __init__(
        self,
        service,
        *,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
    ):
        self._service = service
        self._method = method
        self._rewrite = rewrite
        self._exec_mode = exec_mode

    @classmethod
    def for_scenario(cls, scenario: Scenario, *, store="instance", **kwargs):
        from ..server import ReasoningService

        service = ReasoningService(
            scenario.program, facts=scenario.database, store=store
        )
        return cls(service, **kwargs)

    @property
    def service(self):
        return self._service

    def worker(self) -> "ServiceTarget":
        return self

    def baseline_version(self) -> int:
        return self._service.current_version

    def query(self, text: str) -> Tuple[Tuple[Tuple[str, ...], ...], int]:
        result = self._service.query(
            text,
            method=self._method,
            rewrite=self._rewrite,
            exec_mode=self._exec_mode,
        )
        return result.answers, result.version

    def update(self, changes: str) -> int:
        return self._service.apply(changes).version

    def close(self) -> None:
        pass


class ClientTarget:
    """A live reasoning daemon over real sockets.

    :meth:`worker` opens one connection per replay worker (the server
    is thread-per-connection; sharing one socket would serialize the
    load at the client).  The client's transparent reconnect keeps a
    long replay alive across a daemon hiccup.
    """

    name = "server"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7777,
        *,
        timeout: float = 60.0,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._method = method
        self._rewrite = rewrite
        self._exec_mode = exec_mode
        self._clients: List[object] = []
        self._lock = threading.Lock()
        self._primary = self._connect()

    def _connect(self):
        from ..server import ReasoningClient

        client = ReasoningClient(self.host, self.port, timeout=self.timeout)
        with self._lock:
            self._clients.append(client)
        return client

    def worker(self) -> "_ClientWorker":
        return _ClientWorker(self, self._connect())

    def baseline_version(self) -> int:
        return self._primary.ping()

    def query(self, text: str):
        return _ClientWorker(self, self._primary).query(text)

    def update(self, changes: str) -> int:
        return _ClientWorker(self, self._primary).update(changes)

    def close(self) -> None:
        with self._lock:
            clients, self._clients = self._clients, []
        for client in clients:
            try:
                client.close()
            except OSError:  # pragma: no cover — teardown best effort
                pass


class _ClientWorker:
    """One worker's private connection, presenting the target surface."""

    def __init__(self, target: ClientTarget, client):
        self._target = target
        self._client = client

    def query(self, text: str) -> Tuple[Tuple[Tuple[str, ...], ...], int]:
        result = self._client.query(
            text,
            method=self._target._method,
            rewrite=self._target._rewrite,
            exec_mode=self._target._exec_mode,
        )
        return result.answers, result.version

    def update(self, changes: str) -> int:
        return self._client.update(changes)["version"]

    def close(self) -> None:
        pass


# -- ground truth ----------------------------------------------------------


class _GroundTruth:
    """Per-version expected answers, derived from the trace itself.

    The trace's update stream is replayed (in trace order) over the
    scenario's base EDB; version ``base + k`` maps to the state after
    the ``k``-th *effective* batch.  Expected answer digests are
    computed lazily — one semi-naive fixpoint per queried version —
    and cached per (query, version).
    """

    def __init__(self, trace: Trace, scenario: Scenario, base_version: int):
        self._program = scenario.program
        self._states: Dict[int, frozenset] = {}
        self._fixpoints: Dict[int, object] = {}
        self._digests: Dict[Tuple[str, int], str] = {}
        self._lock = threading.Lock()
        state = set(scenario.database)
        version = base_version
        self._states[version] = frozenset(state)
        for op in trace.ops:
            if op.kind != "update":
                continue
            inserts, retracts = ChangeSet.parse(op.changes).net()
            effective_retracts = [a for a in retracts if a in state]
            effective_inserts = [a for a in inserts if a not in state]
            if not effective_retracts and not effective_inserts:
                continue
            state.difference_update(effective_retracts)
            state.update(effective_inserts)
            version += 1
            self._states[version] = frozenset(state)

    def knows(self, version: int) -> bool:
        return version in self._states

    def expected_digest(self, query_text: str, version: int) -> str:
        from ..datalog.seminaive import seminaive

        key = (query_text, version)
        with self._lock:
            cached = self._digests.get(key)
        if cached is not None:
            return cached
        with self._lock:
            fixpoint = self._fixpoints.get(version)
        if fixpoint is None:
            computed = seminaive(
                Database(self._states[version]), self._program
            ).instance
            with self._lock:
                fixpoint = self._fixpoints.setdefault(version, computed)
        digest = answer_digest(parse_query(query_text).evaluate(fixpoint))
        with self._lock:
            return self._digests.setdefault(key, digest)


# -- the replay driver -----------------------------------------------------


@dataclass
class ReplayResult:
    """One replay run: latency accounting plus the verification verdict."""

    target: str
    mode: str                       # "closed" | "open"
    workers: int
    rate: Optional[float] = None
    wall_seconds: float = 0.0
    ops_run: int = 0
    verified: int = 0
    latency: Dict[str, LatencyHistogram] = field(default_factory=dict)
    lateness: LatencyHistogram = field(default_factory=LatencyHistogram)
    mismatches: List[dict] = field(default_factory=list)
    unknown_versions: List[dict] = field(default_factory=list)
    errors: List[dict] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.ops_run / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def ok(self) -> bool:
        return not (self.mismatches or self.unknown_versions or self.errors)

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "mode": self.mode,
            "workers": self.workers,
            "rate": self.rate,
            "wall_seconds": self.wall_seconds,
            "ops_run": self.ops_run,
            "throughput_ops_per_sec": self.throughput,
            "verified": self.verified,
            "latency": {
                kind: hist.summary()
                for kind, hist in self.latency.items()
                if hist.count
            },
            "lateness": (
                self.lateness.summary() if self.lateness.count else None
            ),
            "mismatches": self.mismatches[:10],
            "unknown_versions": self.unknown_versions[:10],
            "errors": self.errors[:10],
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"replayed {self.ops_run} op(s) against {self.target} "
            f"({self.mode} loop, {self.workers} worker(s)"
            + (f", {self.rate:g} ops/s target" if self.rate else "")
            + f") in {self.wall_seconds:.2f}s "
            f"— {self.throughput:.1f} ops/s",
        ]
        for kind in ("all",) + OP_KINDS:
            hist = self.latency.get(kind)
            if hist is None or not hist.count:
                continue
            lines.append(
                f"  {kind:13s} {hist.count:6d} op(s)  "
                f"p50 {hist.p50 * 1000:8.2f}ms  "
                f"p99 {hist.p99 * 1000:8.2f}ms  "
                f"max {hist.max * 1000:8.2f}ms"
            )
        if self.lateness.count:
            lines.append(
                f"  lateness      {self.lateness.count:6d} op(s)  "
                f"p50 {self.lateness.p50 * 1000:8.2f}ms  "
                f"p99 {self.lateness.p99 * 1000:8.2f}ms  "
                f"max {self.lateness.max * 1000:8.2f}ms"
            )
        lines.append(
            f"  verified {self.verified} answer(s): "
            f"{len(self.mismatches)} mismatch(es), "
            f"{len(self.unknown_versions)} unknown version(s), "
            f"{len(self.errors)} error(s)"
        )
        return "\n".join(lines)


class _UpdateSequencer:
    """Admits updates in trace order; queries pass through untouched."""

    def __init__(self, trace: Trace):
        self._sequence = {
            op.index: position
            for position, op in enumerate(
                op for op in trace.ops if op.kind == "update"
            )
        }
        self._applied = 0
        self._condition = threading.Condition()

    def run(self, op_index: int, operation):
        turn = self._sequence[op_index]
        with self._condition:
            while self._applied != turn:
                self._condition.wait(timeout=60)
            try:
                return operation()
            finally:
                self._applied += 1
                self._condition.notify_all()


def replay_trace(
    trace: Trace,
    target,
    *,
    workers: int = 1,
    rate: Union[None, float, str] = None,
    verify: bool = True,
    scenario: Optional[Scenario] = None,
) -> ReplayResult:
    """Replay *trace* against *target* and account every latency.

    ``rate=None`` is the closed loop: *workers* threads issue ops
    back-to-back.  A numeric ``rate`` (ops/sec) or ``rate="trace"``
    (honour each op's recorded ``at``) is the open loop: ops are held
    until their scheduled instant, and the gap between schedule and
    actual issue is recorded in the lateness histogram — workers all
    busy at an op's deadline *is* the signal, not an error.

    With ``verify=True`` (the default) every query/point-lookup answer
    is digest-checked against from-scratch evaluation on the EDB state
    of its admitted version; *scenario* overrides the trace-embedded
    generator record as the ground-truth base.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(rate, str):
        if rate != "trace":
            raise ValueError(
                f"rate must be a number, None, or 'trace', got {rate!r}"
            )
    elif rate is not None and rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    trace.validate()
    truth: Optional[_GroundTruth] = None
    if verify:
        if scenario is None:
            scenario = materialize_scenario(trace)
        truth = _GroundTruth(trace, scenario, target.baseline_version())

    result = ReplayResult(
        target=target.name,
        mode="closed" if rate is None else "open",
        workers=workers,
        rate=rate if isinstance(rate, (int, float)) else None,
        latency={kind: LatencyHistogram() for kind in ("all",) + OP_KINDS},
    )
    sequencer = _UpdateSequencer(trace)
    ops = trace.ops
    cursor = iter(range(len(ops)))
    cursor_lock = threading.Lock()
    record_lock = threading.Lock()
    epoch = time.perf_counter()

    def scheduled_at(op) -> float:
        if rate == "trace":
            return op.at
        return op.index / rate  # numeric open-loop override

    def run_worker() -> None:
        handle = target.worker()
        try:
            while True:
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                op = ops[index]
                if rate is not None:
                    due = scheduled_at(op)
                    while True:
                        now = time.perf_counter() - epoch
                        if now >= due:
                            break
                        time.sleep(min(0.02, due - now))
                    result.lateness.record(
                        (time.perf_counter() - epoch) - due
                    )
                began = time.perf_counter()
                try:
                    if op.kind == "update":
                        sequencer.run(
                            op.index, lambda: handle.update(op.changes)
                        )
                        answers = version = None
                    else:
                        answers, version = handle.query(op.query)
                except Exception as error:
                    with record_lock:
                        result.errors.append(
                            {"index": op.index, "error": repr(error)}
                        )
                    continue
                elapsed = time.perf_counter() - began
                result.latency["all"].record(elapsed)
                result.latency[op.kind].record(elapsed)
                with record_lock:
                    result.ops_run += 1
                if truth is None or op.kind == "update":
                    continue
                if not truth.knows(version):
                    with record_lock:
                        result.unknown_versions.append(
                            {"index": op.index, "version": version}
                        )
                    continue
                expected = truth.expected_digest(op.query, version)
                with record_lock:
                    result.verified += 1
                    if answer_digest(answers) != expected:
                        result.mismatches.append(
                            {
                                "index": op.index,
                                "query": op.query,
                                "version": version,
                                "answers": len(answers),
                            }
                        )
        finally:
            handle.close()

    threads = [
        threading.Thread(target=run_worker, name=f"replay-{n}", daemon=True)
        for n in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    result.wall_seconds = time.perf_counter() - epoch
    stuck = [thread.name for thread in threads if thread.is_alive()]
    if stuck:
        result.errors.append(
            {"index": -1, "error": f"workers did not finish: {stuck}"}
        )
    return result
