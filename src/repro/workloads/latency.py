"""Shared latency accounting: a log-bucketed histogram.

Every perf artifact in the repo that reports percentiles goes through
:class:`LatencyHistogram`, so "p99" means the same thing in
``BENCH_replay.json`` as in ``BENCH_server.json``: nearest-rank over
geometric buckets, clamped to the observed min/max.

The buckets are geometric — bucket 0 is ``[0, base)`` and bucket *i*
covers ``[base·g^(i-1), base·g^i)`` with ``base`` one microsecond and
``g = 2^(1/8)`` by default — so the relative quantization error is
bounded (≤ ~9% with the default growth) regardless of whether the
samples are microsecond point lookups or second-long saturations, while
the storage stays a handful of integer counters instead of one float
per observation.  Recording is O(1) and thread-safe: replay workers and
benchmark reader threads share one instance without coordination beyond
the internal lock.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Optional

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """A thread-safe histogram of durations (seconds) in log buckets.

    >>> hist = LatencyHistogram()
    >>> for ms in (1, 2, 3, 50):
    ...     hist.record(ms / 1000.0)
    >>> hist.count
    4
    >>> 0.002 <= hist.percentile(0.50) <= 0.0033
    True
    """

    __slots__ = (
        "base",
        "growth",
        "_log_growth",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(self, *, base: float = 1e-6, growth: float = 2 ** 0.125):
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        if growth <= 1:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self.base = base
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    @classmethod
    def of(cls, samples: Iterable[float], **kwargs) -> "LatencyHistogram":
        """A histogram pre-loaded with *samples* (seconds each)."""
        hist = cls(**kwargs)
        for sample in samples:
            hist.record(sample)
        return hist

    # -- recording ---------------------------------------------------------

    def _bucket(self, value: float) -> int:
        if value < self.base:
            return 0
        return 1 + int(math.log(value / self.base) / self._log_growth)

    def _representative(self, bucket: int) -> float:
        """The geometric midpoint of a bucket (half the base for 0)."""
        if bucket == 0:
            return self.base / 2.0
        return self.base * self.growth ** (bucket - 1) * math.sqrt(self.growth)

    def record(self, seconds: float) -> None:
        """Record one duration.  Negative durations are clamped to 0
        (clock adjustments mid-measurement, not caller errors)."""
        value = max(0.0, float(seconds))
        bucket = self._bucket(value)
        with self._lock:
            self._counts[bucket] = self._counts.get(bucket, 0) + 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other*'s samples into this histogram.

        Requires identical bucket geometry — merging histograms with
        different bases or growth factors would silently misfile counts.
        """
        if (other.base, other.growth) != (self.base, self.growth):
            raise ValueError(
                "cannot merge histograms with different bucket geometry"
            )
        with other._lock:
            counts = dict(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for bucket, n in counts.items():
                self._counts[bucket] = self._counts.get(bucket, 0) + n
            self._count += count
            self._sum += total
            if low is not None and (self._min is None or low < self._min):
                self._min = low
            if high is not None and (self._max is None or high > self._max):
                self._max = high

    # -- reading -----------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._max is not None else 0.0

    def percentile(self, fraction: float) -> float:
        """The nearest-rank *fraction* percentile, in seconds.

        The answer is a bucket's geometric midpoint clamped to the
        observed ``[min, max]`` — so ``percentile(1.0)`` is exactly the
        maximum and quantization never reports a value outside the
        observed range.
        """
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            if not self._count:
                return 0.0
            target = max(1, math.ceil(fraction * self._count))
            cumulative = 0
            for bucket in sorted(self._counts):
                cumulative += self._counts[bucket]
                if cumulative >= target:
                    value = self._representative(bucket)
                    return min(max(value, self._min), self._max)
            return self._max  # pragma: no cover — unreachable

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def throughput(self, wall_seconds: float) -> float:
        """Completed operations per second over *wall_seconds*."""
        return self.count / wall_seconds if wall_seconds > 0 else 0.0

    def summary(self) -> dict:
        """The stable JSON shape every perf artifact embeds."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1000.0,
            "min_ms": self.min * 1000.0,
            "p50_ms": self.p50 * 1000.0,
            "p90_ms": self.p90 * 1000.0,
            "p99_ms": self.p99 * 1000.0,
            "max_ms": self.max * 1000.0,
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram({self.count} samples, "
            f"p50={self.p50 * 1000:.2f}ms, p99={self.p99 * 1000:.2f}ms)"
        )
