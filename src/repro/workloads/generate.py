"""Seeded workload generation: zipfian key skew over scenario key spaces.

The "millions of users" traffic the north star names is not uniform:
a few hot entities absorb most of the reads while the long tail is
touched rarely, and updates churn the same skewed key population.
:class:`ZipfianSampler` is the seeded, ``s``-parameterized sampler that
produces that shape, and :func:`generate_trace` composes it with a
configurable op mix (read-heavy, churn, lookup-heavy) over a scenario
family's exported key space (:meth:`repro.benchsuite.Scenario.key_space`)
into a reproducible :class:`~repro.workloads.trace.Trace` — same seed,
byte-identical trace.

Updates are generated *statefully*: the generator tracks the live edge
set, so every retraction targets a present fact and every insertion an
absent one.  Replay therefore admits every update batch as effective,
which keeps the trace-order → EDB-version mapping exact — the property
the replay driver's ground-truth verification stands on.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Sequence, Tuple

from ..benchsuite import Scenario, generate_churn
from .trace import TRACE_SCHEMA, Trace, TraceError, TraceOp

__all__ = [
    "MIXES",
    "TRACE_FAMILIES",
    "ZipfianSampler",
    "generate_trace",
    "materialize_scenario",
]

#: Named op mixes: fractions of query / update / point_lookup traffic.
#: ``read-heavy`` is the 90/5/5 serving shape, ``churn`` the 50%-write
#: maintenance stress, ``lookup-heavy`` the point-probe cache workload.
MIXES: Dict[str, Dict[str, float]] = {
    "read-heavy": {"query": 0.90, "update": 0.05, "point_lookup": 0.05},
    "churn": {"query": 0.25, "update": 0.50, "point_lookup": 0.25},
    "lookup-heavy": {"query": 0.25, "update": 0.05, "point_lookup": 0.70},
}

#: Scenario families traces can be generated over (and re-materialized
#: from, for replay ground truth).  Only the churn family ships a
#: maintainable update model today; read-only families would slot in
#: here with an empty update fraction.
TRACE_FAMILIES = ("churn",)


class ZipfianSampler:
    """Seeded sampling from a Zipf(s) distribution over ranked keys.

    Key *rank* is assigned by position in *keys* (rank 1 first, the
    hottest); weight of rank ``r`` is ``r^-s``.  ``s = 0`` degenerates
    to uniform; serving traffic is typically ``s ≈ 0.9–1.3``.  Sampling
    is O(log n) via bisection over the cumulative weights, and fully
    deterministic in the seed.
    """

    def __init__(
        self, keys: Sequence[str], *, s: float = 1.1, seed: int = 2019
    ):
        if not keys:
            raise ValueError("ZipfianSampler needs a non-empty key space")
        if s < 0:
            raise ValueError(f"skew parameter s must be >= 0, got {s}")
        self.keys = tuple(keys)
        self.s = s
        self._rng = random.Random(seed)
        weights = [(rank + 1) ** -s for rank in range(len(self.keys))]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def expected_mass(self, rank: int) -> float:
        """The analytic probability of the rank-*rank* key (1-based)."""
        if not 1 <= rank <= len(self.keys):
            raise ValueError(f"rank must be in [1, {len(self.keys)}]")
        weight = rank ** -self.s
        return weight / self._total

    def sample(self) -> str:
        point = self._rng.random() * self._total
        return self.keys[bisect_right(self._cumulative, point)]

    def uniform(self) -> str:
        """One uniformly random key from the same rng stream."""
        return self.keys[self._rng.randrange(len(self.keys))]


#: Query shapes per sampled key: forward closure from the key, reverse
#: closure into it, and the unary reachability probe.
_QUERY_PATTERNS = (
    "q(X) :- t({key}, X).",
    "q(X) :- t(X, {key}).",
    "q() :- reach({key}).",
)


def _base_scenario(
    family: str, *, vertices: int, edges: int, clusters: int, seed: int
) -> Scenario:
    if family not in TRACE_FAMILIES:
        raise ValueError(
            f"unknown trace family {family!r}; "
            f"choose from {', '.join(TRACE_FAMILIES)}"
        )
    # steps=0: only the base scenario — the trace carries its own
    # update stream, generated with the key skew instead of uniformly.
    return generate_churn(
        vertices=vertices,
        edges=edges,
        clusters=clusters,
        steps=0,
        seed=seed,
    ).scenario


def materialize_scenario(trace: Trace) -> Scenario:
    """Rebuild the scenario a trace was generated over.

    The trace header records the family and generator parameters, so
    replay (and its ground-truth verification) reconstructs the same
    program and base EDB from the trace file alone.
    """
    generator = trace.meta.get("generator")
    if not isinstance(generator, dict):
        raise TraceError(
            "trace meta carries no 'generator' record; cannot rebuild "
            "the scenario (replay needs an explicit scenario=)"
        )
    try:
        return _base_scenario(
            generator["family"],
            vertices=generator["vertices"],
            edges=generator["edges"],
            clusters=generator["clusters"],
            seed=generator["seed"],
        )
    except (KeyError, ValueError, TypeError) as error:
        raise TraceError(f"bad generator record: {error!r}") from error


def _edges_of(scenario: Scenario) -> set:
    return {
        (str(atom.args[0]), str(atom.args[1]))
        for atom in scenario.database
        if atom.predicate == "e"
    }


def generate_trace(
    *,
    ops: int,
    mix: str = "read-heavy",
    skew: float = 1.1,
    seed: int = 2019,
    rate: float = 200.0,
    family: str = "churn",
    vertices: int = 64,
    edges: int = 128,
    clusters: int = 8,
    update_batch: int = 4,
    lookup_hit_fraction: float = 0.5,
) -> Trace:
    """Generate a reproducible *ops*-long trace over a scenario family.

    One seeded rng drives every choice — op kind, key rank, query
    shape, edge churn — in a fixed order, so the same arguments always
    produce the byte-identical NDJSON dump.  ``rate`` only stamps the
    ``at`` schedule (op ``i`` at ``i/rate`` seconds) for the open-loop
    replay driver; closed-loop replay ignores it.
    """
    if ops < 1:
        raise ValueError(f"ops must be >= 1, got {ops}")
    if mix not in MIXES:
        raise ValueError(
            f"unknown mix {mix!r}; choose from {', '.join(MIXES)}"
        )
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if update_batch < 2:
        raise ValueError(f"update_batch must be >= 2, got {update_batch}")
    scenario = _base_scenario(
        family, vertices=vertices, edges=edges, clusters=clusters, seed=seed
    )
    keys = scenario.key_space()
    rng = random.Random(seed)
    # Hot ranks are a property of the workload, not of key names: a
    # seeded shuffle assigns which keys are hot, then the sampler owns
    # the rank → frequency shape.
    ranked = rng.sample(keys, len(keys))
    sampler = ZipfianSampler(ranked, s=skew, seed=rng.randrange(2 ** 30))
    weights = MIXES[mix]
    kinds = rng.choices(
        population=list(weights), weights=list(weights.values()), k=ops
    )
    live = _edges_of(scenario)

    def fresh_edge(forbidden: frozenset) -> Tuple[str, str]:
        # *forbidden* carries the current batch's retractions: re-adding
        # one would net (-e, +e) into an insert of a fact present at
        # batch start — breaking the every-op-effective invariant.
        for _ in range(64):
            a = sampler.sample()
            b = sampler.uniform()
            if a != b and (a, b) not in live and (a, b) not in forbidden:
                return a, b
        # Dense key spaces can exhaust skewed probing; fall back to the
        # first absent pair in deterministic order.
        for a in ranked:
            for b in ranked:
                if a != b and (a, b) not in live and (a, b) not in forbidden:
                    return a, b
        raise ValueError("key space saturated: no absent edge to insert")

    trace_ops: List[TraceOp] = []
    for index, kind in enumerate(kinds):
        at = index / rate
        if kind == "query":
            key = sampler.sample()
            pattern = _QUERY_PATTERNS[
                0 if rng.random() < 0.6 else rng.randrange(
                    1, len(_QUERY_PATTERNS)
                )
            ]
            trace_ops.append(
                TraceOp(
                    index=index,
                    at=at,
                    kind=kind,
                    query=pattern.format(key=key),
                    key=key,
                )
            )
        elif kind == "point_lookup":
            if live and rng.random() < lookup_hit_fraction:
                a, b = sorted(live)[rng.randrange(len(live))]
            else:
                a = sampler.sample()
                b = sampler.uniform()
            trace_ops.append(
                TraceOp(
                    index=index,
                    at=at,
                    kind=kind,
                    query=f"q() :- t({a}, {b}).",
                    key=a,
                )
            )
        else:  # update
            retract_count = min(update_batch // 2, max(0, len(live) - 1))
            outgoing = rng.sample(sorted(live), retract_count)
            live.difference_update(outgoing)
            forbidden = frozenset(outgoing)
            incoming = []
            for _ in range(update_batch - retract_count):
                pair = fresh_edge(forbidden)
                live.add(pair)
                incoming.append(pair)
            lines = [f"-e({a},{b})." for a, b in outgoing]
            lines += [f"+e({a},{b})." for a, b in incoming]
            trace_ops.append(
                TraceOp(
                    index=index,
                    at=at,
                    kind=kind,
                    changes="\n".join(lines),
                    key=incoming[0][0] if incoming else "",
                )
            )

    meta = {
        "schema": TRACE_SCHEMA,
        "generator": {
            "family": family,
            "vertices": vertices,
            "edges": edges,
            "clusters": clusters,
            "seed": seed,
            "update_batch": update_batch,
            "lookup_hit_fraction": lookup_hit_fraction,
        },
        "mix": {"name": mix, "weights": weights},
        "skew": skew,
        "rate": rate,
        "ops": ops,
        "key_space": len(keys),
        "scenario": scenario.name,
    }
    return Trace(ops=tuple(trace_ops), meta=meta)
