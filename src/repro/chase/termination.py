"""Termination control for the chase.

The chase of a warded set of TGDs need not terminate; the Vadalog system
controls recursion with *guide structures* (linear forest, warded forest,
lifted linear forest — Section 7(1) and reference [6]).  Those structures
are proprietary and only sketched in the literature, so this module
provides the closest open implementations of the same role
(**[SIM]** substitution, see DESIGN.md §5):

* :class:`DepthPolicy` — bound the *null depth* (how many nested
  existential inventions lead to a term).  Sound for query answering in
  the sense that everything derived is certain; completeness requires a
  sufficiently large bound.
* :class:`IsomorphismPolicy` — Vadalog-style aggressive termination
  control: a trigger is suppressed when every atom it would create is
  *isomorphic modulo nulls* to an atom already present (same predicate,
  same constants at the same positions, same equality pattern among
  nulls).  For warded sets this prunes the repetitive part of the chase
  while preserving all *ground* consequences along isomorphic
  sub-chases; queries that join on nulls across atoms may need the
  unpruned chase (the classic price of atom-level patterns — documented
  behaviour, exercised by the E7 ablation benchmark).
* :class:`CompositePolicy` — conjunction of policies.

Policies are consulted *before* a trigger fires; returning False
suppresses it.  They also see the atoms the trigger would create.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Null
from .trigger import Trigger

__all__ = [
    "TerminationPolicy",
    "AlwaysFire",
    "DepthPolicy",
    "IsomorphismPolicy",
    "CompositePolicy",
    "atom_shape",
]


class TerminationPolicy(Protocol):
    """Decides whether a trigger may fire given what it would produce."""

    def should_fire(
        self,
        trigger: Trigger,
        produced: Sequence[Atom],
        instance: Instance,
    ) -> bool:
        """Return False to suppress the trigger."""
        ...


class AlwaysFire:
    """The no-op policy: never suppresses anything."""

    def should_fire(
        self, trigger: Trigger, produced: Sequence[Atom], instance: Instance
    ) -> bool:
        return True


class DepthPolicy:
    """Suppress triggers that would create nulls deeper than *max_depth*."""

    def __init__(self, max_depth: int):
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        self.max_depth = max_depth

    def should_fire(
        self, trigger: Trigger, produced: Sequence[Atom], instance: Instance
    ) -> bool:
        for atom in produced:
            for term in atom.args:
                if isinstance(term, Null) and term.depth > self.max_depth:
                    return False
        return True


def atom_shape(atom: Atom) -> tuple:
    """The isomorphism type of an atom modulo null identity.

    Constants stay concrete; nulls are replaced by their first-occurrence
    index within the atom, so ``R(c, ⊥7, ⊥7)`` and ``R(c, ⊥9, ⊥9)`` share
    a shape while ``R(c, ⊥7, ⊥8)`` does not.
    """
    seen: dict[Null, int] = {}
    shaped: list[object] = []
    for term in atom.args:
        if isinstance(term, Null):
            index = seen.setdefault(term, len(seen))
            shaped.append(("null", index))
        else:
            shaped.append(("const", term))
    return (atom.predicate, tuple(shaped))


class IsomorphismPolicy:
    """Suppress triggers whose every produced atom repeats a known shape.

    The policy tracks the shapes of all atoms it has allowed into the
    instance; a trigger survives iff it contributes at least one *new*
    shape.  This emulates the guide-structure check of the Vadalog
    system: sub-chases rooted at isomorphic atoms are isomorphic, so one
    representative suffices for deriving ground atoms.
    """

    def __init__(self) -> None:
        self._shapes: set[tuple] = set()
        self.suppressed = 0

    def register(self, atoms: Iterable[Atom]) -> None:
        """Record the shapes of atoms already in the instance (e.g. D)."""
        for atom in atoms:
            self._shapes.add(atom_shape(atom))

    def should_fire(
        self, trigger: Trigger, produced: Sequence[Atom], instance: Instance
    ) -> bool:
        fresh = [a for a in produced if atom_shape(a) not in self._shapes]
        if not fresh:
            self.suppressed += 1
            return False
        for atom in produced:
            self._shapes.add(atom_shape(atom))
        return True


class CompositePolicy:
    """Fire only if every constituent policy agrees."""

    def __init__(self, policies: Sequence[TerminationPolicy]):
        self.policies = list(policies)

    def should_fire(
        self, trigger: Trigger, produced: Sequence[Atom], instance: Instance
    ) -> bool:
        return all(
            policy.should_fire(trigger, produced, instance)
            for policy in self.policies
        )
