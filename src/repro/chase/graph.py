"""The chase graph (Section 4.2).

For a database D and a set Σ of TGDs (and a fixed chase sequence), the
chase graph ``G^{D,Σ}`` has the atoms of ``chase(D, Σ)`` as vertices and
an edge (α, β) labeled (σ, h) whenever β was *newly* derived by the
trigger (σ, h) and α belongs to the trigger's body image.  The graph is
acyclic (new atoms only point forward) and underlies the chase-tree
machinery the paper uses to prove Theorems 4.8 and 4.9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.substitution import Substitution

__all__ = ["ChaseGraph", "DerivationEdge"]


@dataclass(frozen=True)
class DerivationEdge:
    """An edge α → β labeled with the trigger (σ index, h) that made β."""

    source: Atom
    target: Atom
    tgd_index: int
    substitution: Substitution


class ChaseGraph:
    """A growing chase graph, recorded while the chase runs."""

    def __init__(self) -> None:
        self._edges_out: Dict[Atom, List[DerivationEdge]] = {}
        self._edges_in: Dict[Atom, List[DerivationEdge]] = {}
        self._vertices: Set[Atom] = set()
        self._derivation_of: Dict[Atom, Tuple[int, Substitution, Tuple[Atom, ...]]] = {}

    def add_database_atom(self, atom: Atom) -> None:
        """Register a database fact (a source vertex with no derivation)."""
        self._vertices.add(atom)

    def record_firing(
        self,
        tgd_index: int,
        substitution: Substitution,
        body_image: Sequence[Atom],
        new_atoms: Sequence[Atom],
    ) -> None:
        """Record edges from every body atom to every *newly derived* atom."""
        for new_atom in new_atoms:
            if new_atom in self._vertices:
                continue  # only first derivations enter the graph
            self._vertices.add(new_atom)
            self._derivation_of[new_atom] = (
                tgd_index,
                substitution,
                tuple(body_image),
            )
            for source in body_image:
                edge = DerivationEdge(source, new_atom, tgd_index, substitution)
                self._edges_out.setdefault(source, []).append(edge)
                self._edges_in.setdefault(new_atom, []).append(edge)

    # -- queries -----------------------------------------------------------

    def vertices(self) -> frozenset[Atom]:
        return frozenset(self._vertices)

    def parents(self, atom: Atom) -> tuple[Atom, ...]:
        """The body image that first derived *atom* (empty for D-atoms)."""
        derivation = self._derivation_of.get(atom)
        return derivation[2] if derivation else ()

    def derivation(self, atom: Atom) -> Optional[Tuple[int, Substitution, Tuple[Atom, ...]]]:
        """(tgd index, h, body image) of *atom*'s first derivation, or None."""
        return self._derivation_of.get(atom)

    def is_database_atom(self, atom: Atom) -> bool:
        """True iff *atom* has no derivation (it came from D)."""
        return atom in self._vertices and atom not in self._derivation_of

    def ancestors(self, atom: Atom) -> set[Atom]:
        """All atoms reachable backwards from *atom* (excluding itself)."""
        seen: Set[Atom] = set()
        stack = list(self.parents(atom))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.parents(current))
        return seen

    def depth_of(self, atom: Atom) -> int:
        """Derivation depth: 0 for database atoms, else 1 + max parent depth."""
        memo: Dict[Atom, int] = {}

        def resolve(target: Atom) -> int:
            stack = [target]
            while stack:
                current = stack[-1]
                if current in memo:
                    stack.pop()
                    continue
                parents = self.parents(current)
                if not parents:
                    memo[current] = 0
                    stack.pop()
                    continue
                missing = [p for p in parents if p not in memo]
                if missing:
                    stack.extend(missing)
                    continue
                memo[current] = 1 + max(memo[p] for p in parents)
                stack.pop()
            return memo[target]

        return resolve(atom)

    def __len__(self) -> int:
        return len(self._vertices)
