"""The chase procedure (Section 2).

Given a database D and a set Σ of TGDs, a chase sequence applies
applicable triggers fairly until the accumulated instance satisfies Σ.
The result ``chase(D, Σ)`` is unique enough for query answering: every
result embeds homomorphically into every other (Proposition 2.1:
``cert(q, D, Σ) = q(chase(D, Σ))``).

Two variants are provided:

* **restricted** (default) — a trigger fires only if its head is not
  already satisfied (the body match does not extend to a head match);
  terminates on many practical programs;
* **oblivious** — every trigger fires exactly once; simpler structure,
  bigger instances.

Termination is controlled by resource limits (steps, atoms, null depth)
and pluggable :mod:`policies <repro.chase.termination>`; the result
reports whether the chase *saturated* (no applicable trigger remained)
or stopped early.  A truncated chase is still sound for certain-answer
purposes: every atom it contains belongs to some chase result.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set

from ..core.atoms import Atom
from ..core.homomorphism import find_homomorphism
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery, stream_new_answers
from ..core.terms import Constant, NullFactory, Term, Variable
from ..storage import FactStore, StoreChoice, make_store
from .graph import ChaseGraph
from .termination import AlwaysFire, TerminationPolicy
from .trigger import Trigger, all_triggers, fire, triggers_for_new_atom

__all__ = [
    "ChaseEvent",
    "ChaseResult",
    "ChaseRun",
    "chase",
    "chase_events",
    "chase_answers",
    "stream_chase_answers",
]


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    ``instance`` is whichever :class:`FactStore` backend the run was
    asked to materialize into (an :class:`Instance` by default).
    """

    instance: FactStore
    saturated: bool                 # True iff no applicable trigger remained
    fired: int                      # number of triggers that fired
    suppressed: int                 # triggers withheld by the policy
    graph: Optional[ChaseGraph] = None
    null_factory: Optional[NullFactory] = None

    def evaluate(self, query: ConjunctiveQuery) -> set[tuple[Constant, ...]]:
        """``q(chase(D, Σ))`` — equals cert(q, D, Σ) when saturated."""
        return query.evaluate(self.instance)


def _head_already_satisfied(trigger: Trigger, instance: FactStore) -> bool:
    """Restricted-chase check: does h|frontier extend to the head in I?"""
    frontier = trigger.tgd.frontier()
    seed: Dict[Variable, Term] = {
        v: trigger.substitution[v] for v in frontier
    }
    return find_homomorphism(list(trigger.tgd.head), instance, seed) is not None


@dataclass(frozen=True)
class ChaseEvent:
    """One pull-based event of a chase run.

    Event 0 carries the seeded database; each later event carries the
    atoms one trigger firing added.  ``instance`` is the live store
    *after* the addition, shared across events.
    """

    index: int
    new_atoms: tuple[Atom, ...]
    instance: FactStore


@dataclass
class ChaseRun:
    """Mutable run record shared between :func:`chase_events` and its
    drivers; filled in as the generator is drained."""

    instance: Optional[FactStore] = None
    saturated: bool = True
    fired: int = 0
    suppressed: int = 0
    graph: Optional[ChaseGraph] = None
    null_factory: Optional[NullFactory] = None

    def result(self) -> ChaseResult:
        assert self.instance is not None
        return ChaseResult(
            instance=self.instance,
            saturated=self.saturated,
            fired=self.fired,
            suppressed=self.suppressed,
            graph=self.graph,
            null_factory=self.null_factory,
        )


def chase_events(
    database: Database,
    program: Program,
    *,
    variant: str = "restricted",
    policy: Optional[TerminationPolicy] = None,
    max_steps: Optional[int] = None,
    max_atoms: Optional[int] = None,
    record_graph: bool = False,
    null_factory: Optional[NullFactory] = None,
    store: StoreChoice = "instance",
    run: Optional[ChaseRun] = None,
):
    """Run a fair chase of *database* under *program*, lazily.

    This is the engine core: a generator of :class:`ChaseEvent` that
    :func:`chase` drains eagerly and :func:`stream_chase_answers` taps
    for incremental answers.  The trigger queue is FIFO over newly
    derived atoms (semi-naive discovery), which yields a fair sequence:
    every applicable trigger is eventually considered.  ``max_steps``
    bounds fired triggers and ``max_atoms`` bounds the instance size;
    hitting either limit records ``saturated=False`` on *run*.

    ``store`` selects the materialization backend (see
    :data:`repro.storage.BACKENDS`); every backend yields the same chase
    up to the representation of the instance.
    """
    if variant not in ("restricted", "oblivious"):
        raise ValueError(f"unknown chase variant {variant!r}")
    run = run if run is not None else ChaseRun()
    policy = policy or AlwaysFire()
    factory = null_factory or NullFactory()
    run.null_factory = factory
    instance = make_store(store, database)
    run.instance = instance
    graph = ChaseGraph() if record_graph else None
    run.graph = graph
    if graph is not None:
        for atom in instance:
            graph.add_database_atom(atom)

    tgds = list(program)
    seen_triggers: Set[tuple] = set()
    queue: Deque[Trigger] = deque()

    def enqueue(trigger: Trigger) -> None:
        key = trigger.key()
        if key not in seen_triggers:
            seen_triggers.add(key)
            queue.append(trigger)

    for trigger in all_triggers(tgds, instance):
        enqueue(trigger)

    yield ChaseEvent(index=0, new_atoms=tuple(instance), instance=instance)
    event_index = 0

    while queue:
        if max_steps is not None and run.fired >= max_steps:
            run.saturated = False
            break
        if max_atoms is not None and len(instance) >= max_atoms:
            run.saturated = False
            break
        trigger = queue.popleft()
        if variant == "restricted" and _head_already_satisfied(trigger, instance):
            continue
        produced, h_prime = fire(trigger, factory)
        if not policy.should_fire(trigger, produced, instance):
            run.suppressed += 1
            continue
        run.fired += 1
        new_atoms = [a for a in produced if a not in instance]
        if graph is not None and new_atoms:
            graph.record_firing(
                trigger.tgd_index, h_prime, trigger.body_image(), new_atoms
            )
        for atom in new_atoms:
            instance.add(atom)
        for atom in new_atoms:
            for new_trigger in triggers_for_new_atom(tgds, atom, instance):
                enqueue(new_trigger)
        if new_atoms:
            event_index += 1
            yield ChaseEvent(
                index=event_index,
                new_atoms=tuple(new_atoms),
                instance=instance,
            )

    if queue:
        run.saturated = False


def chase(
    database: Database,
    program: Program,
    **chase_kwargs,
) -> ChaseResult:
    """Run a fair chase of *database* under *program* to completion.

    Thin eager driver over :func:`chase_events`; see there for the
    keyword arguments and fairness/limit semantics.
    """
    run = ChaseRun()
    for _ in chase_events(database, program, run=run, **chase_kwargs):
        pass
    return run.result()


def stream_chase_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    run: Optional[ChaseRun] = None,
    on_fixpoint=None,
    **chase_kwargs,
):
    """Yield ``q(chase(D, Σ))`` tuples as the chase derives them.

    Sound at every prefix (a truncated chase only under-approximates);
    complete exactly when the chase saturates — inspect *run* after
    exhaustion, or use the planner path which raises for the strict
    certain-answer semantics.  ``on_fixpoint``, if given, receives the
    final :class:`FactStore` of a *saturated* run (for caching).
    """
    run = run if run is not None else ChaseRun()
    yield from stream_new_answers(
        query,
        chase_events(database, program, run=run, **chase_kwargs),
        lambda event: event.new_atoms,
    )
    if on_fixpoint is not None and run.saturated and run.instance is not None:
        on_fixpoint(run.instance)


def chase_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    **chase_kwargs,
) -> set[tuple[Constant, ...]]:
    """Certain answers via the chase (exact when the chase saturates).

    When the chase is truncated by limits the returned set is a *sound
    under-approximation* of cert(q, D, Σ): every returned tuple is a
    certain answer, but some certain answers may be missing.

    Thin deprecated wrapper: engine selection and execution live in
    :mod:`repro.api`; this routes through the planner with the chase
    engine forced and the non-strict (no raise on truncation) semantics.
    """
    from ..api import compile_program
    from ..api.execution import execute_plan
    from ..api.planner import Planner

    store = chase_kwargs.pop("store", "instance")
    plan = Planner().plan(
        compile_program(program),
        query,
        method="chase",
        store=store,
        strict=False,
        **chase_kwargs,
    )
    return set(execute_plan(plan, database))
