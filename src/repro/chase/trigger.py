"""Chase triggers.

A TGD σ is *applicable* w.r.t. an instance I if there is a homomorphism h
with ``h(body(σ)) ⊆ I``; the pair (σ, h) is a *trigger*.  Firing the
trigger extends I with ``h'(head(σ))`` where h' agrees with h on the
frontier and maps each existential variable to a fresh null
(Section 2, "chase step").

Trigger discovery is semi-naive: when an atom is added to the instance,
only homomorphisms whose body image uses that atom need to be considered
(pinning each body atom of each TGD to the new atom in turn).  This is
the standard delta-driven strategy used by chase engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence

from ..core.atoms import Atom
from ..core.homomorphism import homomorphisms
from ..core.instance import Instance
from ..core.substitution import Substitution
from ..core.terms import Null, NullFactory, Term, Variable
from ..core.tgd import TGD

__all__ = ["Trigger", "triggers_for_new_atom", "all_triggers", "fire"]


@dataclass(frozen=True)
class Trigger:
    """An applicable pair (σ, h), h restricted to the body variables."""

    tgd_index: int
    tgd: TGD
    substitution: Substitution

    def body_image(self) -> tuple[Atom, ...]:
        """``h(body(σ))`` — the atoms of I that matched the body."""
        return self.substitution.apply_atoms(self.tgd.body)

    def key(self) -> tuple[int, tuple[Atom, ...]]:
        """Deduplication key: same rule, same body image ⇒ same trigger."""
        return (self.tgd_index, self.body_image())


def _match_with_pin(
    tgd: TGD,
    tgd_index: int,
    pin_position: int,
    new_atom: Atom,
    instance: Instance,
) -> Iterator[Trigger]:
    """Triggers of *tgd* whose body atom at *pin_position* maps to *new_atom*."""
    pinned = tgd.body[pin_position]
    if pinned.predicate != new_atom.predicate or pinned.arity != new_atom.arity:
        return
    seed: Dict[Variable, Term] = {}
    for p_term, n_term in zip(pinned.args, new_atom.args):
        if isinstance(p_term, Variable):
            existing = seed.get(p_term)
            if existing is not None and existing != n_term:
                return
            seed[p_term] = n_term
        elif p_term != n_term:
            return
    rest = [a for i, a in enumerate(tgd.body) if i != pin_position]
    for hom in homomorphisms(rest, instance, seed):
        yield Trigger(tgd_index, tgd, hom)


def triggers_for_new_atom(
    tgds: Sequence[TGD], new_atom: Atom, instance: Instance
) -> Iterator[Trigger]:
    """All triggers that use *new_atom* somewhere in their body image.

    To avoid yielding the same trigger once per pinned position, each
    trigger is reported for the *first* body position that maps to the
    new atom.
    """
    for tgd_index, tgd in enumerate(tgds):
        for position in range(len(tgd.body)):
            for trigger in _match_with_pin(
                tgd, tgd_index, position, new_atom, instance
            ):
                image = trigger.body_image()
                first_use = None
                for i, atom in enumerate(image):
                    if atom == new_atom:
                        first_use = i
                        break
                if first_use == position:
                    yield trigger


def all_triggers(
    tgds: Sequence[TGD], instance: Instance
) -> Iterator[Trigger]:
    """Every applicable trigger over the full instance (naive discovery)."""
    for tgd_index, tgd in enumerate(tgds):
        for hom in homomorphisms(tgd.body, instance):
            yield Trigger(tgd_index, tgd, hom)


def fire(
    trigger: Trigger, null_factory: NullFactory
) -> tuple[tuple[Atom, ...], Substitution]:
    """Compute the head atoms the trigger produces (not yet inserted).

    Returns ``(atoms, h')`` where h' extends the body match on the
    frontier with fresh nulls for the existential variables.  The depth
    of each fresh null is one more than the deepest null among the terms
    the trigger consumes (constants count as depth 0), which gives the
    chase's "null depth" used by depth-bounded termination control.
    """
    h = trigger.substitution
    input_depth = 0
    for atom in trigger.body_image():
        for term in atom.args:
            if isinstance(term, Null):
                input_depth = max(input_depth, term.depth)
    extension: Dict[Term, Term] = {}
    for var in sorted(trigger.tgd.existential_variables(), key=lambda v: v.name):
        extension[var] = null_factory.fresh(depth=input_depth + 1)
    h_prime = Substitution({**{k: h[k] for k in h}, **extension})
    return h_prime.apply_atoms(trigger.tgd.head), h_prime
