"""The chase procedure: triggers, runner, termination control, chase graph."""

from .graph import ChaseGraph, DerivationEdge
from .runner import (
    ChaseEvent,
    ChaseResult,
    ChaseRun,
    chase,
    chase_answers,
    chase_events,
    stream_chase_answers,
)
from .termination import (
    AlwaysFire,
    CompositePolicy,
    DepthPolicy,
    IsomorphismPolicy,
    TerminationPolicy,
    atom_shape,
)
from .trigger import Trigger, all_triggers, fire, triggers_for_new_atom

__all__ = [
    "chase",
    "chase_answers",
    "chase_events",
    "stream_chase_answers",
    "ChaseEvent",
    "ChaseResult",
    "ChaseRun",
    "Trigger",
    "all_triggers",
    "triggers_for_new_atom",
    "fire",
    "ChaseGraph",
    "DerivationEdge",
    "TerminationPolicy",
    "AlwaysFire",
    "DepthPolicy",
    "IsomorphismPolicy",
    "CompositePolicy",
    "atom_shape",
]
