"""Program expressive power and the separation witness (Section 6.2).

The *program expressive power* of a set Σ decouples the TGDs from the
CQ: ``ep(Σ)`` collects the triples (D, q, c̄) with c̄ ∈ cert(q, D, Σ).
Theorem 6.6 shows (WARD ∩ PWL, CQ) is *strictly* more expressive than
piece-wise linear Datalog in this sense, exposing the power of value
invention.  The proof of Lemma 6.7 uses the witness

    Σ  = { P(x) → ∃y R(x, y) }      D = { P(c) }
    q1 = Q ← R(x, y)                 q2 = Q ← R(x, y), P(y)

Q1(D) ≠ ∅ but Q2(D) = ∅; any *full* (Datalog) program Σ' that agrees
with Σ on q1 must derive a ground fact R(c, t) for a constant t of D —
with dom(D) = {c} necessarily t = c — and then R(c, c), P(c) makes
Q'2(D) ≠ ∅, a contradiction.  :func:`refutes_full_program` runs exactly
this argument against any candidate Datalog program.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..core.tgd import TGD
from ..datalog.seminaive import datalog_answers

__all__ = ["SeparationWitness", "separation_witness", "refutes_full_program"]


@dataclass(frozen=True)
class SeparationWitness:
    """The Lemma 6.7 witness: program, database, and the two probe CQs."""

    program: Program
    database: Database
    q1: ConjunctiveQuery
    q2: ConjunctiveQuery


def separation_witness() -> SeparationWitness:
    """Construct the Lemma 6.7 witness objects."""
    x, y = Variable("x"), Variable("y")
    c = Constant("c")
    program = Program(
        [TGD((Atom("P", (x,)),), (Atom("R", (x, y)),), label="invent")],
        name="separation",
    )
    database = Database([Atom("P", (c,))])
    q1 = ConjunctiveQuery((), (Atom("R", (x, y)),), head_predicate="Q")
    q2 = ConjunctiveQuery(
        (), (Atom("R", (x, y)), Atom("P", (y,))), head_predicate="Q"
    )
    return SeparationWitness(program, database, q1, q2)


def refutes_full_program(candidate: Program) -> bool:
    """Does the Lemma 6.7 argument refute *candidate* as an equivalent?

    A full (Datalog) program Σ' would need Q'1(D) ≠ ∅ and Q'2(D) = ∅ on
    the witness database to match Σ's program expressive power.  The
    lemma shows that is impossible; this function checks that the
    impossibility indeed materializes for the given candidate: it
    returns True iff the candidate *fails* to reproduce both answers —
    i.e., the candidate is refuted.
    """
    if not candidate.is_full() or not candidate.is_single_head():
        raise ValueError("the separation argument applies to full single-head "
                         "(Datalog) candidates")
    witness = separation_witness()
    answers_q1 = datalog_answers(witness.q1, witness.database, candidate)
    answers_q2 = datalog_answers(witness.q2, witness.database, candidate)
    agrees_q1 = bool(answers_q1)      # Σ: Q1(D) ≠ ∅
    agrees_q2 = not answers_q2        # Σ: Q2(D) = ∅
    return not (agrees_q1 and agrees_q2)
