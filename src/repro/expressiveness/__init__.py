"""Expressive power: proof-tree-to-Datalog rewritings and separations."""

from .separation import (
    SeparationWitness,
    refutes_full_program,
    separation_witness,
)
from .translation import (
    RewritingResult,
    proof_tree_rewriting,
    pwl_to_datalog,
    set_partitions,
    ward_to_datalog,
)

__all__ = [
    "proof_tree_rewriting",
    "pwl_to_datalog",
    "ward_to_datalog",
    "RewritingResult",
    "set_partitions",
    "separation_witness",
    "SeparationWitness",
    "refutes_full_program",
]
