"""The proof-tree-to-Datalog rewriting (Lemma 6.4 / Theorem 6.3).

Every query Q = (Σ, q) with Σ ∈ WARD ∩ PWL can be rewritten into an
equivalent piece-wise linear Datalog query; every Q with Σ ∈ WARD into
an equivalent Datalog query.  The construction converts proof trees
into Datalog rules over predicates ``C[p]`` — one per CQ *p* occurring
as a node label, identified up to canonical variable renaming:

* a node labeled p0 with children p1, ..., pk becomes the full TGD
  ``C[p1](x̄1), ..., C[pk](x̄k) → C[p0](x̄0)``;
* a label that can be a *leaf* — its atoms evaluated directly over the
  database — becomes an evaluation rule ``atoms(p) → C[p](x̄p)``;
* the root labels (one per partition π of the output variables)
  feed a final ``Answer`` predicate that realizes eq_π.

Instead of enumerating proof trees one by one, the implementation
enumerates the finite space of canonical node labels of node-width at
most the Theorem 4.8/4.9 bound and emits a rule per valid edge; the
resulting program simulates *every* bounded-width proof tree at once.

**Database schema modes.**  The Section 6 expressiveness setting
evaluates queries over databases over ``edb(Σ)`` only; then a label can
be a leaf iff all its atoms are extensional (``database_schema="edb"``,
the default).  Practical knowledge-graph databases also seed
intensional predicates with facts; ``database_schema="full"`` supports
that by letting *every* label be a leaf, through auxiliary non-recursive
``L[p]`` predicates (defined only by evaluation rules, plus a bridge
``L[p] → C[p]``) so that linear-mode output remains piece-wise linear:
a decomposition rule uses the recursive ``C`` form for at most one
child and the non-recursive ``L`` form for the rest.

With ``linear=True`` decomposition edges follow the linear-proof-tree
shape (at most one non-leaf child), making the output piece-wise
linear; with ``linear=False`` arbitrary decompositions are allowed and
the output is plain Datalog (Theorem 6.3(2)).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..analysis.levels import node_width_bound_pwl, node_width_bound_ward
from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..core.atoms import Atom
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Variable
from ..core.tgd import TGD
from ..prooftree.canonical import canonical_form
from ..prooftree.decomposition import connected_components, restrict_output
from ..prooftree.resolution import ido_resolvents
from ..prooftree.specialization import enumerate_specializations
from ..prooftree.tree import eq_partition_substitution

__all__ = [
    "RewritingResult",
    "proof_tree_rewriting",
    "pwl_to_datalog",
    "ward_to_datalog",
    "set_partitions",
]

_ANSWER = "Answer"
_OUT_PREFIX = "ᵒ"


@dataclass
class RewritingResult:
    """A Datalog rewriting of a (Σ, q) query."""

    program: Program                 # full single-head TGDs over edb(Σ) ∪ C[...]
    query: ConjunctiveQuery          # atomic query over the Answer predicate
    states: int                      # canonical node labels discovered
    rules: int
    complete: bool                   # False iff max_states stopped enumeration
    width_bound: int


def set_partitions(items: Sequence[Variable]) -> Iterator[List[List[Variable]]]:
    """All partitions of *items* (the π of Definition 4.6)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        yield [[first]] + partition


def _output_variable(index: int) -> Variable:
    return Variable(f"{_OUT_PREFIX}{index}")


@dataclass(frozen=True)
class _StateKey:
    """Canonical identity of a node label: frozen outputs + canonical body."""

    outputs: tuple[Variable, ...]
    atoms: tuple[Atom, ...]


class _Enumerator:
    """Worklist enumeration of canonical node labels and edge rules."""

    def __init__(
        self,
        program: Program,
        width_bound: int,
        linear: bool,
        full_database: bool,
        max_states: Optional[int],
    ):
        self.program = program
        self.edb = program.extensional_predicates()
        self.width_bound = width_bound
        self.linear = linear
        self.full_database = full_database
        self.max_states = max_states
        self.predicate_of: Dict[_StateKey, str] = {}
        self.rules: List[TGD] = []
        self._rule_keys: Set[tuple] = set()
        self.queue: Deque[_StateKey] = deque()
        self.complete = True

    # -- canonicalization ------------------------------------------------------

    def canonicalize(
        self, query: ConjunctiveQuery
    ) -> Tuple[_StateKey, tuple[Variable, ...]]:
        """Canonical key of a CQ plus its unique outputs in original names.

        Output variables are renamed positionally to the ᵒi pool and
        frozen; the body is then canonicalized around them.
        """
        unique_outputs = tuple(dict.fromkeys(query.output))
        renaming = Substitution(
            {v: _output_variable(i) for i, v in enumerate(unique_outputs)}
        )
        frozen = tuple(_output_variable(i) for i in range(len(unique_outputs)))
        body = canonical_form(renaming.apply_atoms(query.atoms), frozen)
        return _StateKey(frozen, body), unique_outputs

    def state_query(self, key: _StateKey) -> ConjunctiveQuery:
        """The canonical representative CQ of a state."""
        return ConjunctiveQuery(key.outputs, key.atoms, head_predicate="C")

    # -- registration ----------------------------------------------------------

    def is_terminal(self, key: _StateKey) -> bool:
        """All atoms extensional: nothing but evaluation applies."""
        return all(atom.predicate in self.edb for atom in key.atoms)

    def leaf_predicate(self, predicate: str) -> str:
        """The non-recursive leaf twin ``L[p]`` of ``C[p]`` (full mode)."""
        return "L" + predicate[1:]

    def register(self, query: ConjunctiveQuery) -> Tuple[str, tuple[Variable, ...]]:
        """Intern a CQ as a state; enqueue for expansion if new and live.

        Returns (predicate name, unique outputs in the caller's names).
        """
        key, original_outputs = self.canonicalize(query)
        predicate = self.predicate_of.get(key)
        if predicate is None:
            predicate = f"C{len(self.predicate_of)}"
            self.predicate_of[key] = predicate
            head = Atom(predicate, key.outputs)
            if self.is_terminal(key):
                self.add_rule(TGD(key.atoms, (head,), label="eval"))
            else:
                if self.full_database:
                    leaf = Atom(self.leaf_predicate(predicate), key.outputs)
                    self.add_rule(TGD(key.atoms, (leaf,), label="leaf"))
                    self.add_rule(TGD((leaf,), (head,), label="bridge"))
                self.queue.append(key)
        return predicate, original_outputs

    def add_rule(self, rule: TGD) -> None:
        marked = rule.body + (Atom("HEAD::" + rule.head[0].predicate,
                                   rule.head[0].args),)
        dedup_key = canonical_form(marked)
        if dedup_key in self._rule_keys:
            return
        self._rule_keys.add(dedup_key)
        self.rules.append(rule)

    # -- expansion -------------------------------------------------------------

    def _decomposition_rules(
        self, key: _StateKey, query: ConjunctiveQuery, head: Atom
    ) -> None:
        components = connected_components(query.atoms, query.output_variables())
        if len(components) <= 1:
            return
        children = [
            ConjunctiveQuery(
                restrict_output(query.output, component),
                tuple(component),
                head_predicate="C",
            )
            for component in components
        ]
        registered = []
        for child in children:
            child_pred, child_outputs = self.register(child)
            child_key = self.canonicalize(child)[0]
            registered.append(
                (child_pred, child_outputs, self.is_terminal(child_key))
            )

        if not self.linear:
            body = tuple(
                Atom(pred, outputs) for pred, outputs, _ in registered
            )
            self.add_rule(TGD(body, (head,), label="dec"))
            return

        non_terminal = [i for i, (_, _, term) in enumerate(registered) if not term]
        if not non_terminal:
            body = tuple(
                Atom(pred, outputs) for pred, outputs, _ in registered
            )
            self.add_rule(TGD(body, (head,), label="dec"))
            return
        if not self.full_database:
            # Leaves must be all-extensional: a linear tree allows at most
            # one non-leaf child, so >1 non-terminal component is useless.
            if len(non_terminal) > 1:
                return
            body = tuple(
                Atom(pred, outputs) for pred, outputs, _ in registered
            )
            self.add_rule(TGD(body, (head,), label="dec"))
            return
        # Full-database linear mode: any child may be a leaf via its L
        # twin; emit one rule per choice of the single active (C) child.
        for active in non_terminal:
            body = []
            for i, (pred, outputs, terminal) in enumerate(registered):
                if terminal or i == active:
                    body.append(Atom(pred, outputs))
                else:
                    body.append(Atom(self.leaf_predicate(pred), outputs))
            self.add_rule(TGD(tuple(body), (head,), label="dec"))

    def expand(self, key: _StateKey) -> None:
        query = self.state_query(key)
        head = Atom(self.predicate_of[key], key.outputs)

        # (r) IDO resolvents: a single-child edge per resolvent.
        for tgd in self.program:
            for resolvent in ido_resolvents(query, tgd):
                if resolvent.query.width() > self.width_bound:
                    continue
                child_pred, child_outputs = self.register(resolvent.query)
                self.add_rule(
                    TGD((Atom(child_pred, child_outputs),), (head,), label="res")
                )

        # (s) single-step specializations.
        for special in enumerate_specializations(query):
            child_pred, child_outputs = self.register(special)
            self.add_rule(
                TGD((Atom(child_pred, child_outputs),), (head,), label="spec")
            )

        # (d) decomposition into connected components.
        self._decomposition_rules(key, query, head)

    def run(self) -> None:
        while self.queue:
            if (
                self.max_states is not None
                and len(self.predicate_of) > self.max_states
            ):
                self.complete = False
                return
            self.expand(self.queue.popleft())


def proof_tree_rewriting(
    query: ConjunctiveQuery,
    program: Program,
    *,
    linear: bool = True,
    width_bound: Optional[int] = None,
    max_states: Optional[int] = 20000,
    database_schema: str = "edb",
) -> RewritingResult:
    """Rewrite (Σ, q) into an equivalent Datalog query.

    ``linear=True`` follows Lemma 6.4 (linear proof trees, PWL output);
    ``linear=False`` follows the Theorem 6.3(2) construction (arbitrary
    proof trees, Datalog output).  ``database_schema`` selects the
    Section 6 setting (``"edb"``: databases over extensional predicates
    only) or the practical one (``"full"``: databases may also seed
    intensional predicates).  The ``width_bound`` defaults to the
    corresponding theorem's node-width polynomial on the single-head
    normalization; smaller bounds produce smaller programs but may lose
    answers (the benchmarks verify equivalence empirically).
    """
    if database_schema not in ("edb", "full"):
        raise ValueError(f"unknown database_schema {database_schema!r}")
    normalized = program.single_head()
    if width_bound is None:
        width_bound = (
            node_width_bound_pwl(query, normalized)
            if linear
            else node_width_bound_ward(query, normalized)
        )
        width_bound = max(width_bound, query.width())

    enumerator = _Enumerator(
        normalized,
        width_bound,
        linear,
        database_schema == "full",
        max_states,
    )

    unique_outputs = list(dict.fromkeys(query.output))
    answer_rules: List[TGD] = []
    for partition in set_partitions(unique_outputs):
        eq = eq_partition_substitution(partition)
        root = ConjunctiveQuery(
            tuple(
                v for v in dict.fromkeys(
                    eq.apply_term(o) for o in query.output
                )
                if isinstance(v, Variable)
            ),
            eq.apply_atoms(query.atoms),
            head_predicate="C",
        )
        root_pred, root_outputs = enumerator.register(root)
        head_args = tuple(eq.apply_term(o) for o in query.output)
        answer_rules.append(
            TGD(
                (Atom(root_pred, root_outputs),),
                (Atom(_ANSWER, head_args),),
                label="answer",
            )
        )

    enumerator.run()
    for rule in answer_rules:
        enumerator.add_rule(rule)

    rewritten = Program(enumerator.rules, name=f"rewriting({program.name})")
    answer_vars = tuple(
        Variable(f"a{i}") for i in range(len(query.output))
    )
    final_query = ConjunctiveQuery(
        answer_vars,
        (Atom(_ANSWER, answer_vars),),
        head_predicate=query.head_predicate,
    )
    return RewritingResult(
        program=rewritten,
        query=final_query,
        states=len(enumerator.predicate_of),
        rules=len(enumerator.rules),
        complete=enumerator.complete,
        width_bound=width_bound,
    )


def pwl_to_datalog(
    query: ConjunctiveQuery,
    program: Program,
    *,
    width_bound: Optional[int] = None,
    max_states: Optional[int] = 20000,
    database_schema: str = "edb",
    check_membership: bool = True,
) -> RewritingResult:
    """Lemma 6.4: (WARD ∩ PWL, CQ) ⟶ piece-wise linear Datalog."""
    if check_membership:
        if not is_warded(program):
            raise ValueError("program is not warded")
        if not is_piecewise_linear(program):
            raise ValueError("program is not piece-wise linear")
    return proof_tree_rewriting(
        query,
        program,
        linear=True,
        width_bound=width_bound,
        max_states=max_states,
        database_schema=database_schema,
    )


def ward_to_datalog(
    query: ConjunctiveQuery,
    program: Program,
    *,
    width_bound: Optional[int] = None,
    max_states: Optional[int] = 20000,
    database_schema: str = "edb",
    check_membership: bool = True,
) -> RewritingResult:
    """Theorem 6.3(2): (WARD, CQ) ⟶ Datalog."""
    if check_membership and not is_warded(program):
        raise ValueError("program is not warded")
    return proof_tree_rewriting(
        query,
        program,
        linear=False,
        width_bound=width_bound,
        max_states=max_states,
        database_schema=database_schema,
    )
