"""repro — a reproduction of "The Space-Efficient Core of Vadalog" (PODS 2019).

The package implements warded Datalog∃ (warded sets of tuple-generating
dependencies) with piece-wise linear recursion: the static analyses that
define the classes WARD and PWL, the chase, the proof-tree machinery and
the space-bounded query-answering algorithms of the paper, the
expressive-power translations, the Section 5 undecidability reduction,
and a Vadalog-style evaluation engine with the Section 7 optimizations.

Quickstart::

    from repro import parse_program, parse_query, certain_answers

    program, database = parse_program('''
        edge(a, b).  edge(b, c).
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
    ''')
    query = parse_query("q(X, Y) :- tc(X, Y).")
    print(certain_answers(query, database, program))
"""

from .core import (
    Atom,
    Constant,
    ConjunctiveQuery,
    Database,
    Instance,
    Null,
    Program,
    Substitution,
    TGD,
    Variable,
)
from .lang import parse_atom, parse_program, parse_query

__version__ = "1.1.0"

__all__ = [
    "Atom",
    "Constant",
    "Variable",
    "Null",
    "Substitution",
    "TGD",
    "Program",
    "ConjunctiveQuery",
    "Instance",
    "Database",
    "parse_program",
    "parse_query",
    "parse_atom",
    "certain_answers",
    "Session",
    "CompiledProgram",
    "Planner",
    "QueryPlan",
    "AnswerStream",
    "compile_program",
    "ChangeSet",
    "MutationLog",
    "MaintenanceReport",
    "api",
    "incremental",
    "__version__",
]

#: Names resolved through :mod:`repro.api` on first access.
_API_EXPORTS = (
    "Session",
    "CompiledProgram",
    "Planner",
    "QueryPlan",
    "AnswerStream",
    "compile_program",
)

#: Names resolved through :mod:`repro.incremental` on first access.
_INCREMENTAL_EXPORTS = ("ChangeSet", "MutationLog", "MaintenanceReport")


def __getattr__(name):
    """Lazily surface the session and incremental layers at the root.

    ``repro.Session``, ``repro.AnswerStream``, ``repro.ChangeSet`` et
    al. resolve through their subpackages on first access, so importing
    the core package stays cheap.
    """
    if name in _API_EXPORTS or name == "api":
        from . import api

        return api if name == "api" else getattr(api, name)
    if name in _INCREMENTAL_EXPORTS or name == "incremental":
        from . import incremental

        return (
            incremental if name == "incremental"
            else getattr(incremental, name)
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    """Make the lazy surface discoverable: ``dir(repro)`` lists the
    session-layer names even before their first access."""
    return sorted(set(globals()) | set(__all__))


def certain_answers(query, database, program, **kwargs):
    """Compute ``cert(q, D, Σ)``; see :func:`repro.reasoning.certain_answers`.

    Imported lazily so that the core package works even while the
    reasoning layer is exercised in isolation.
    """
    from .reasoning import certain_answers as _certain_answers

    return _certain_answers(query, database, program, **kwargs)
