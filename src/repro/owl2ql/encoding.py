"""Compiling OWL 2 QL ontologies into warded piece-wise linear TGDs.

The encoding completes the paper's Example 3.3: the six published rules
cover subclass closure, type transfer, value-inventing restrictions and
inverses; the remaining QL axiom shapes (subproperty closure, domain,
range) extend the same ``type``/``triple`` vocabulary without leaving
WARD ∩ PWL — ``type`` and ``triple`` form the single mutually recursive
component, and every rule touches it through exactly one body atom
while the axiom-storage atoms act as wards.

Storage vocabulary (database predicates):

=================  =========================
``subClass(C,D)``  C ⊑ D
``subProp(P,Q)``   P ⊑ Q
``inv(P,Q)``       P ≡ Q⁻ (stored both ways)
``dom(P,C)``       ∃P ⊑ C
``rng(P,C)``       ∃P⁻ ⊑ C
``restr(C,P)``     C ⊑ ∃P
=================  =========================

Derived vocabulary: ``type(x, C)`` and ``triple(x, P, y)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Constant
from ..lang.parser import parse_program
from .ontology import Ontology

__all__ = ["EncodedOntology", "encode", "entailment_rules"]

_RULES = """
    % transitive-reflexive machinery for the taxonomy
    subClassStar(X, Y) :- subClass(X, Y).
    subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
    subPropStar(P, Q)  :- subProp(P, Q).
    subPropStar(P, R)  :- subPropStar(P, Q), subProp(Q, R).

    % entailment over instances (Example 3.3, completed)
    type(X, D)         :- type(X, C), subClassStar(C, D).
    triple(X, Q, Y)    :- triple(X, P, Y), subPropStar(P, Q).
    triple(Y, Q, X)    :- triple(X, P, Y), inv(P, Q).
    type(X, C)         :- triple(X, P, Y), dom(P, C).
    type(Y, C)         :- triple(X, P, Y), rng(P, C).
    triple(X, P, W)    :- type(X, C), restr(C, P).
"""


@dataclass
class EncodedOntology:
    """The (Σ, D) compilation of an ontology."""

    program: Program
    database: Database
    ontology: Ontology

    def vocabulary(self) -> Set[str]:
        return {"type", "triple"}


def entailment_rules() -> Program:
    """The fixed entailment TGD set (independent of the ontology)."""
    program, leftover = parse_program(_RULES, name="owl2ql-entailment")
    assert len(leftover) == 0
    return program


def encode(ontology: Ontology) -> EncodedOntology:
    """Compile *ontology* into the fixed rules plus a storage database."""
    database = Database()

    def add(predicate: str, *values: str) -> None:
        database.add(Atom(predicate, tuple(Constant(v) for v in values)))

    for sub, sup in ontology.subclasses:
        add("subClass", sub, sup)
    for sub, sup in ontology.subproperties:
        add("subProp", sub, sup)
    for prop, inverse_prop in ontology.inverses:
        # P ≡ Q⁻ works in both directions.
        add("inv", prop, inverse_prop)
        add("inv", inverse_prop, prop)
    for prop, cls in ontology.domains:
        add("dom", prop, cls)
    for prop, cls in ontology.ranges:
        add("rng", prop, cls)
    for cls, prop in ontology.some_values_axioms:
        add("restr", cls, prop)
    for individual, cls in ontology.class_assertions:
        add("type", individual, cls)
    for subject, prop, obj in ontology.property_assertions:
        add("triple", subject, prop, obj)

    return EncodedOntology(
        program=entailment_rules(),
        database=database,
        ontology=ontology,
    )
