"""SPARQL-style basic graph patterns under the entailment regime.

A :class:`BGPQuery` is a conjunction of triple patterns over the
ontology vocabulary — ``(?x, "type", "person")`` or
``(?x, "worksFor", ?y)`` — compiled into a conjunctive query over the
``type``/``triple`` encoding and answered with the package's certain-
answer machinery.  This is the SPARQL/OWL 2 QL loop of Section 3 end to
end: pattern → CQ → warded PWL reasoning → entailment-regime answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple, Union

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..reasoning.answers import certain_answers
from .encoding import EncodedOntology

__all__ = ["Var", "TriplePattern", "BGPQuery", "answer_bgp"]

#: The reserved predicate marking an rdf:type pattern.
TYPE = "type"


@dataclass(frozen=True)
class Var:
    """A SPARQL-style variable, written ``Var("x")`` for ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Var, str]


@dataclass(frozen=True)
class TriplePattern:
    """One pattern: (subject, predicate, object).

    The predicate is a fixed property name or the reserved ``"type"``;
    subject and object may be :class:`Var` or individual/class names.
    (OWL 2 QL queries do not quantify over predicates.)
    """

    subject: PatternTerm
    predicate: str
    object: PatternTerm


def _to_term(value: PatternTerm) -> Term:
    if isinstance(value, Var):
        return Variable(f"V_{value.name}")
    return Constant(value)


@dataclass
class BGPQuery:
    """A basic graph pattern with selected output variables."""

    select: Tuple[Var, ...]
    patterns: Tuple[TriplePattern, ...]

    @staticmethod
    def make(
        select: Sequence[Var], patterns: Sequence[TriplePattern]
    ) -> "BGPQuery":
        return BGPQuery(tuple(select), tuple(patterns))

    def to_cq(self) -> ConjunctiveQuery:
        """Compile to a CQ over the ``type``/``triple`` vocabulary."""
        if not self.patterns:
            raise ValueError("a BGP needs at least one triple pattern")
        atoms: List[Atom] = []
        in_scope: Set[str] = set()
        for pattern in self.patterns:
            subject = _to_term(pattern.subject)
            obj = _to_term(pattern.object)
            for term in (pattern.subject, pattern.object):
                if isinstance(term, Var):
                    in_scope.add(term.name)
            if pattern.predicate == TYPE:
                atoms.append(Atom("type", (subject, obj)))
            else:
                atoms.append(
                    Atom(
                        "triple",
                        (subject, Constant(pattern.predicate), obj),
                    )
                )
        missing = [v.name for v in self.select if v.name not in in_scope]
        if missing:
            raise ValueError(
                f"selected variables not bound by any pattern: {missing}"
            )
        output = tuple(Variable(f"V_{v.name}") for v in self.select)
        return ConjunctiveQuery(output, tuple(atoms), head_predicate="q")


def answer_bgp(
    query: BGPQuery,
    encoded: EncodedOntology,
    **engine_kwargs,
) -> Set[Tuple[Constant, ...]]:
    """Certain answers of a BGP under the OWL 2 QL entailment regime."""
    return certain_answers(
        query.to_cq(),
        encoded.database,
        encoded.program,
        **engine_kwargs,
    )
