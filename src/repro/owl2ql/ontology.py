"""OWL 2 QL ontologies: TBox axioms and ABox assertions.

The supported axiom shapes are the QL profile's workhorses (the ones a
``type``/``triple`` encoding over TGDs captures natively):

==========================  ===========================================
axiom                       meaning
==========================  ===========================================
``subclass(C, D)``          C ⊑ D
``subproperty(P, Q)``       P ⊑ Q
``inverse(P, Q)``           P ≡ Q⁻
``domain(P, C)``            ∃P ⊑ C        (subjects of P are C)
``range(P, C)``             ∃P⁻ ⊑ C       (objects of P are C)
``some_values(C, P)``       C ⊑ ∃P        (every C has a P-successor —
                            value invention in the encoding)
==========================  ===========================================

ABox assertions are ``member(a, C)`` (class membership) and
``related(a, P, b)`` (property atoms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

__all__ = ["Ontology"]


@dataclass
class Ontology:
    """A mutable OWL 2 QL ontology (TBox + ABox) with a fluent API."""

    name: str = ""
    subclasses: List[Tuple[str, str]] = field(default_factory=list)
    subproperties: List[Tuple[str, str]] = field(default_factory=list)
    inverses: List[Tuple[str, str]] = field(default_factory=list)
    domains: List[Tuple[str, str]] = field(default_factory=list)
    ranges: List[Tuple[str, str]] = field(default_factory=list)
    some_values_axioms: List[Tuple[str, str]] = field(default_factory=list)
    class_assertions: List[Tuple[str, str]] = field(default_factory=list)
    property_assertions: List[Tuple[str, str, str]] = field(
        default_factory=list
    )

    # -- TBox ------------------------------------------------------------

    def subclass(self, sub: str, sup: str) -> "Ontology":
        """C ⊑ D."""
        self.subclasses.append((sub, sup))
        return self

    def subproperty(self, sub: str, sup: str) -> "Ontology":
        """P ⊑ Q."""
        self.subproperties.append((sub, sup))
        return self

    def inverse(self, prop: str, inverse_prop: str) -> "Ontology":
        """P ≡ Q⁻ (recorded in both directions)."""
        self.inverses.append((prop, inverse_prop))
        return self

    def domain(self, prop: str, cls: str) -> "Ontology":
        """∃P ⊑ C."""
        self.domains.append((prop, cls))
        return self

    def range(self, prop: str, cls: str) -> "Ontology":
        """∃P⁻ ⊑ C."""
        self.ranges.append((prop, cls))
        return self

    def some_values(self, cls: str, prop: str) -> "Ontology":
        """C ⊑ ∃P — the value-inventing axiom (Example 3.3's
        ``Restriction``)."""
        self.some_values_axioms.append((cls, prop))
        return self

    # -- ABox ---------------------------------------------------------------

    def member(self, individual: str, cls: str) -> "Ontology":
        """Class assertion C(a)."""
        self.class_assertions.append((individual, cls))
        return self

    def related(
        self, subject: str, prop: str, obj: str
    ) -> "Ontology":
        """Property assertion P(a, b)."""
        self.property_assertions.append((subject, prop, obj))
        return self

    # -- vocabulary -------------------------------------------------------------

    def classes(self) -> Set[str]:
        names: Set[str] = set()
        for sub, sup in self.subclasses:
            names.update((sub, sup))
        names.update(cls for _, cls in self.domains)
        names.update(cls for _, cls in self.ranges)
        names.update(cls for cls, _ in self.some_values_axioms)
        names.update(cls for _, cls in self.class_assertions)
        return names

    def properties(self) -> Set[str]:
        names: Set[str] = set()
        for sub, sup in self.subproperties:
            names.update((sub, sup))
        for p, q in self.inverses:
            names.update((p, q))
        names.update(p for p, _ in self.domains)
        names.update(p for p, _ in self.ranges)
        names.update(p for _, p in self.some_values_axioms)
        names.update(p for _, p, _ in self.property_assertions)
        return names

    def individuals(self) -> Set[str]:
        names = {a for a, _ in self.class_assertions}
        for subject, _, obj in self.property_assertions:
            names.update((subject, obj))
        return names

    def axiom_count(self) -> int:
        return (
            len(self.subclasses)
            + len(self.subproperties)
            + len(self.inverses)
            + len(self.domains)
            + len(self.ranges)
            + len(self.some_values_axioms)
        )
