"""OWL 2 QL ontological reasoning — the paper's key application.

Section 3 singles out one distinctive capability of warded TGDs: they
"can express every SPARQL query under the OWL 2 QL direct semantics
entailment regime" — Example 3.3 shows the core six rules.  This
subpackage wraps that capability behind an ontology-level API:

* :class:`Ontology <repro.owl2ql.ontology.Ontology>` — OWL 2 QL TBox
  axioms (subclass, subproperty, domain, range, inverse, existential
  restrictions in both directions) plus ABox assertions;
* :func:`encode <repro.owl2ql.encoding.encode>` — compilation into a
  warded, piece-wise linear TGD set over the ``type``/``triple``
  vocabulary (the Example 3.3 encoding, completed with the remaining
  QL axiom shapes) and a database holding the axioms and assertions;
* :class:`BGPQuery <repro.owl2ql.queries.BGPQuery>` — SPARQL-style
  basic graph patterns answered under the entailment regime via
  ``certain_answers``.
"""

from .encoding import EncodedOntology, encode, entailment_rules
from .ontology import Ontology
from .queries import BGPQuery, TriplePattern, Var, answer_bgp

__all__ = [
    "Ontology",
    "encode",
    "entailment_rules",
    "EncodedOntology",
    "BGPQuery",
    "TriplePattern",
    "Var",
    "answer_bgp",
]
