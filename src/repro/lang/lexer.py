"""Tokenizer for the Vadalog-style surface syntax.

The token stream feeds :mod:`repro.lang.parser`.  Lexical rules:

* identifiers starting with a lowercase letter are constant/predicate
  symbols (``edge``, ``subClass``),
* identifiers starting with an uppercase letter or ``_`` are variables;
  a bare ``_`` is a "don't-care" variable (fresh at every occurrence),
* integers and double-quoted strings are constants,
* ``:-`` (or ``<-``) separates head and body; ``,`` joins atoms;
  statements end with ``.``,
* ``%`` and ``#`` start a comment running to the end of the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.spans import Span

__all__ = ["Token", "TokenType", "tokenize", "LexerError"]


class LexerError(ValueError):
    """Raised on input the tokenizer cannot make sense of."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class TokenType:
    """Token kinds (plain string constants; no enum ceremony needed)."""

    NAME = "NAME"          # lowercase-initial identifier
    VARIABLE = "VARIABLE"  # uppercase/underscore-initial identifier
    NUMBER = "NUMBER"
    STRING = "STRING"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    PERIOD = "PERIOD"
    IMPLIES = "IMPLIES"    # :- or <-
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A single token with its source location (1-based).

    ``end_line``/``end_column`` mark the position just past the token's
    last character (end-exclusive); a default of 0 means "unknown" and
    resolves to ``column + len(value)`` via :attr:`span`.
    """

    type: str
    value: str
    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    @property
    def span(self) -> Span:
        """The token's source region as a :class:`~repro.core.spans.Span`."""
        if self.end_line:
            return Span(self.line, self.column, self.end_line, self.end_column)
        return Span.point(self.line, self.column, max(len(self.value), 1))

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; raises :class:`LexerError` on illegal characters."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def advance(k: int = 1) -> None:
        nonlocal i, line, column
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch in "%#":
            while i < n and text[i] != "\n":
                advance()
            continue
        if ch == "(":
            tokens.append(
                Token(TokenType.LPAREN, "(", line, column, line, column + 1)
            )
            advance()
            continue
        if ch == ")":
            tokens.append(
                Token(TokenType.RPAREN, ")", line, column, line, column + 1)
            )
            advance()
            continue
        if ch == ",":
            tokens.append(
                Token(TokenType.COMMA, ",", line, column, line, column + 1)
            )
            advance()
            continue
        if ch == ".":
            tokens.append(
                Token(TokenType.PERIOD, ".", line, column, line, column + 1)
            )
            advance()
            continue
        if text.startswith(":-", i) or text.startswith("<-", i):
            tokens.append(
                Token(
                    TokenType.IMPLIES, text[i:i + 2],
                    line, column, line, column + 2,
                )
            )
            advance(2)
            continue
        if ch == '"':
            start_line, start_col = line, column
            advance()
            chars: list[str] = []
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    advance()
                    chars.append(text[i])
                else:
                    chars.append(text[i])
                advance()
            if i >= n:
                raise LexerError("unterminated string literal", start_line, start_col)
            advance()  # closing quote
            tokens.append(
                Token(
                    TokenType.STRING, "".join(chars),
                    start_line, start_col, line, column,
                )
            )
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            start_line, start_col = line, column
            start = i
            advance()
            while i < n and text[i].isdigit():
                advance()
            tokens.append(
                Token(
                    TokenType.NUMBER, text[start:i],
                    start_line, start_col, line, column,
                )
            )
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column
            start = i
            while i < n and (text[i].isalnum() or text[i] in "_'"):
                advance()
            word = text[start:i]
            kind = (
                TokenType.VARIABLE
                if word[0].isupper() or word[0] == "_"
                else TokenType.NAME
            )
            tokens.append(
                Token(kind, word, start_line, start_col, line, column)
            )
            continue
        raise LexerError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token(TokenType.EOF, "", line, column, line, column))
    return tokens
