"""Parser for the Vadalog-style surface syntax.

The grammar (statements end with ``.``):

* **fact** — a ground atom: ``edge(a, b).`` → goes to the database,
* **rule** — ``head1, ..., headm :- body1, ..., bodyk.`` → a TGD; every
  variable occurring in the head but not in the body is read as
  existentially quantified, matching Datalog∃ conventions,
* **query** — parsed by :func:`parse_query` from the same rule shape
  ``q(X, Y) :- body.``; the head arguments (which must be body
  variables) become the output tuple x̄.

``parse_program`` returns the pair (Program, Database); facts and rules
may be interleaved freely.  ``_`` is a don't-care variable: each
occurrence becomes a distinct fresh variable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_program", "parse_query", "parse_atom", "ParserError"]


class ParserError(ValueError):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token):
        super().__init__(
            f"line {token.line}, column {token.column}: {message} "
            f"(at {token.value!r})"
        )
        self.token = token


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0
        self._dontcare = itertools.count()

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, token_type: str) -> Token:
        token = self._peek()
        if token.type != token_type:
            raise ParserError(f"expected {token_type}", token)
        return self._next()

    def at_end(self) -> bool:
        return self._peek().type == TokenType.EOF

    # -- grammar -------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._peek()
        if token.type == TokenType.VARIABLE:
            self._next()
            if token.value == "_":
                return Variable(f"_dc{next(self._dontcare)}")
            return Variable(token.value)
        if token.type == TokenType.NAME:
            self._next()
            return Constant(token.value)
        if token.type == TokenType.NUMBER:
            self._next()
            return Constant(int(token.value))
        if token.type == TokenType.STRING:
            self._next()
            return Constant(token.value)
        raise ParserError("expected a term", token)

    def parse_atom(self) -> Atom:
        name_token = self._peek()
        if name_token.type not in (TokenType.NAME, TokenType.VARIABLE):
            raise ParserError("expected a predicate name", name_token)
        # Predicate names may be capitalized (the paper writes SubClass,
        # Type, ...); a NAME or VARIABLE token followed by '(' is a
        # predicate application.
        self._next()
        self._expect(TokenType.LPAREN)
        args: list[Term] = []
        if self._peek().type != TokenType.RPAREN:
            args.append(self.parse_term())
            while self._peek().type == TokenType.COMMA:
                self._next()
                args.append(self.parse_term())
        self._expect(TokenType.RPAREN)
        return Atom(name_token.value, tuple(args))

    def parse_atom_list(self) -> list[Atom]:
        atoms = [self.parse_atom()]
        while self._peek().type == TokenType.COMMA:
            self._next()
            atoms.append(self.parse_atom())
        return atoms

    def parse_statement(self) -> Tuple[str, object]:
        """Parse one statement: ('fact', Atom) or ('rule', TGD)."""
        first_atoms = self.parse_atom_list()
        token = self._peek()
        if token.type == TokenType.PERIOD:
            self._next()
            if len(first_atoms) != 1:
                raise ParserError(
                    "a fact statement must contain exactly one atom", token
                )
            return ("fact", first_atoms[0])
        if token.type == TokenType.IMPLIES:
            self._next()
            body = self.parse_atom_list()
            self._expect(TokenType.PERIOD)
            return ("rule", TGD(tuple(body), tuple(first_atoms)))
        raise ParserError("expected '.' or ':-'", token)


def parse_program(text: str, name: str = "") -> Tuple[Program, Database]:
    """Parse a program text into a (Program, Database) pair.

    Ground atoms become database facts; rules become TGDs.  Rules whose
    "body" is ground but whose head mentions variables are rejected by
    TGD validation downstream, not here.
    """
    parser = _Parser(text)
    tgds: List[TGD] = []
    database = Database()
    while not parser.at_end():
        kind, payload = parser.parse_statement()
        if kind == "fact":
            atom = payload
            assert isinstance(atom, Atom)
            if not atom.is_fact():
                raise ValueError(
                    f"fact statement {atom} contains variables; "
                    "did you mean a rule?"
                )
            database.add(atom)
        else:
            tgd = payload
            assert isinstance(tgd, TGD)
            tgds.append(tgd)
    return Program(tgds, name=name), database


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a single CQ in rule form: ``q(X, Y) :- r(X, Z), s(Z, Y).``

    The head predicate name is kept for printing; head arguments must be
    variables occurring in the body (the paper's output variables x̄).
    """
    parser = _Parser(text)
    kind, payload = parser.parse_statement()
    if not parser.at_end():
        raise ValueError("parse_query expects exactly one rule")
    if kind != "rule":
        raise ValueError("a query must have the rule form 'q(...) :- body.'")
    tgd = payload
    assert isinstance(tgd, TGD)
    if len(tgd.head) != 1:
        raise ValueError("a query head must be a single atom")
    head = tgd.head[0]
    output: list[Variable] = []
    for term in head.args:
        if not isinstance(term, Variable):
            raise ValueError(
                f"query output positions must be variables, got {term}"
            )
        output.append(term)
    return ConjunctiveQuery(
        tuple(output), tgd.body, head_predicate=head.predicate
    )


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``edge(a, B)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if parser._peek().type == TokenType.PERIOD:
        parser._next()
    if not parser.at_end():
        raise ValueError("trailing input after atom")
    return atom
