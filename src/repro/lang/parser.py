"""Parser for the Vadalog-style surface syntax.

The grammar (statements end with ``.``):

* **fact** — a ground atom: ``edge(a, b).`` → goes to the database,
* **rule** — ``head1, ..., headm :- body1, ..., bodyk.`` → a TGD; every
  variable occurring in the head but not in the body is read as
  existentially quantified, matching Datalog∃ conventions.  Body
  literals may be negated (``t(X) :- e(X), not blocked(X).``); negated
  literals are carried on :attr:`repro.core.tgd.TGD.negated` for the
  static analyses — the positive engines reject them at planning time,
* **query** — parsed by :func:`parse_query` from the same rule shape
  ``q(X, Y) :- body.``; the head arguments (which must be body
  variables) become the output tuple x̄.

``parse_program`` returns the pair (Program, Database); facts and rules
may be interleaved freely.  ``_`` is a don't-care variable: each
occurrence becomes a distinct fresh variable.

Every construct carries its source span (:mod:`repro.core.spans`), and
every syntax error is a :class:`ParserError` with ``line``/``column``
attributes — including the statement-shape errors (fact with variables,
malformed query) that used to surface as bare ``ValueError``\\ s.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.spans import AtomSpan, Span
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_program", "parse_query", "parse_atom", "ParserError"]


class ParserError(ValueError):
    """Raised when the token stream does not match the grammar.

    Always carries a source position: ``line`` and ``column`` (1-based),
    plus the offending ``token`` when the error is anchored to one.
    """

    def __init__(
        self,
        message: str,
        token: Optional[Token] = None,
        *,
        span: Optional[Span] = None,
    ):
        if token is not None:
            line, column = token.line, token.column
            rendered = (
                f"line {line}, column {column}: {message} "
                f"(at {token.value!r})"
            )
        elif span is not None:
            line, column = span.line, span.column
            rendered = f"line {line}, column {column}: {message}"
        else:  # positionless fallback; no current caller uses it
            line = column = 0
            rendered = message
        super().__init__(rendered)
        self.token = token
        self.span = span if span is not None else (
            token.span if token is not None else None
        )
        self.line = line
        self.column = column


def _atom_span(atom: Atom) -> Optional[Span]:
    return atom.span.whole if atom.span is not None else None


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0
        self._dontcare = itertools.count()

    # -- token plumbing -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, token_type: str) -> Token:
        token = self._peek()
        if token.type != token_type:
            raise ParserError(f"expected {token_type}", token)
        return self._next()

    def at_end(self) -> bool:
        return self._peek().type == TokenType.EOF

    # -- grammar -------------------------------------------------------------

    def parse_term(self) -> Tuple[Term, Span]:
        token = self._peek()
        if token.type == TokenType.VARIABLE:
            self._next()
            if token.value == "_":
                return Variable(f"_dc{next(self._dontcare)}"), token.span
            return Variable(token.value), token.span
        if token.type == TokenType.NAME:
            self._next()
            return Constant(token.value), token.span
        if token.type == TokenType.NUMBER:
            self._next()
            return Constant(int(token.value)), token.span
        if token.type == TokenType.STRING:
            self._next()
            return Constant(token.value), token.span
        raise ParserError("expected a term", token)

    def parse_atom(self) -> Atom:
        name_token = self._peek()
        if name_token.type not in (TokenType.NAME, TokenType.VARIABLE):
            raise ParserError("expected a predicate name", name_token)
        # Predicate names may be capitalized (the paper writes SubClass,
        # Type, ...); a NAME or VARIABLE token followed by '(' is a
        # predicate application.
        self._next()
        self._expect(TokenType.LPAREN)
        args: list[Term] = []
        arg_spans: list[Span] = []
        if self._peek().type != TokenType.RPAREN:
            term, span = self.parse_term()
            args.append(term)
            arg_spans.append(span)
            while self._peek().type == TokenType.COMMA:
                self._next()
                term, span = self.parse_term()
                args.append(term)
                arg_spans.append(span)
        rparen = self._expect(TokenType.RPAREN)
        whole = name_token.span.merge(rparen.span)
        return Atom(
            name_token.value,
            tuple(args),
            span=AtomSpan(whole, tuple(arg_spans)),
        )

    def _at_negation(self) -> bool:
        """``not`` followed by a predicate application starts a negated
        literal; ``not(...)`` stays an ordinary atom named ``not``."""
        token = self._peek()
        return (
            token.type == TokenType.NAME
            and token.value == "not"
            and self._peek(1).type in (TokenType.NAME, TokenType.VARIABLE)
        )

    def parse_literal_list(
        self, allow_negation: bool
    ) -> Tuple[list[Atom], list[Atom]]:
        """A comma-separated literal list: (positive atoms, negated atoms)."""
        positives: list[Atom] = []
        negatives: list[Atom] = []

        def one_literal() -> None:
            if self._at_negation():
                not_token = self._next()
                if not allow_negation:
                    raise ParserError(
                        "negated literals are only allowed in rule bodies",
                        not_token,
                    )
                negatives.append(self.parse_atom())
            else:
                positives.append(self.parse_atom())

        one_literal()
        while self._peek().type == TokenType.COMMA:
            self._next()
            one_literal()
        return positives, negatives

    def parse_atom_list(self) -> list[Atom]:
        atoms, _ = self.parse_literal_list(allow_negation=False)
        return atoms

    def parse_statement(self) -> Tuple[str, object]:
        """Parse one statement: ('fact', Atom) or ('rule', TGD)."""
        start = self._peek()
        first_atoms = self.parse_atom_list()
        token = self._peek()
        if token.type == TokenType.PERIOD:
            self._next()
            if len(first_atoms) != 1:
                raise ParserError(
                    "a fact statement must contain exactly one atom", token
                )
            return ("fact", first_atoms[0])
        if token.type == TokenType.IMPLIES:
            self._next()
            body, negated = self.parse_literal_list(allow_negation=True)
            period = self._expect(TokenType.PERIOD)
            return (
                "rule",
                TGD(
                    tuple(body),
                    tuple(first_atoms),
                    negated=tuple(negated),
                    span=start.span.merge(period.span),
                ),
            )
        raise ParserError("expected '.' or ':-'", token)


def parse_program(text: str, name: str = "") -> Tuple[Program, Database]:
    """Parse a program text into a (Program, Database) pair.

    Ground atoms become database facts; rules become TGDs.  Rules whose
    "body" is ground but whose head mentions variables are rejected by
    TGD validation downstream, not here.
    """
    parser = _Parser(text)
    tgds: List[TGD] = []
    database = Database()
    while not parser.at_end():
        kind, payload = parser.parse_statement()
        if kind == "fact":
            atom = payload
            assert isinstance(atom, Atom)
            if not atom.is_fact():
                raise ParserError(
                    f"fact statement {atom} contains variables; "
                    "did you mean a rule?",
                    span=_atom_span(atom),
                )
            database.add(atom)
        else:
            tgd = payload
            assert isinstance(tgd, TGD)
            tgds.append(tgd)
    return Program(tgds, name=name), database


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a single CQ in rule form: ``q(X, Y) :- r(X, Z), s(Z, Y).``

    The head predicate name is kept for printing; head arguments must be
    variables occurring in the body (the paper's output variables x̄).
    """
    parser = _Parser(text)
    kind, payload = parser.parse_statement()
    if not parser.at_end():
        raise ParserError(
            "parse_query expects exactly one rule", parser._peek()
        )
    if kind != "rule":
        atom = payload
        assert isinstance(atom, Atom)
        raise ParserError(
            "a query must have the rule form 'q(...) :- body.'",
            span=_atom_span(atom),
        )
    tgd = payload
    assert isinstance(tgd, TGD)
    if tgd.negated:
        raise ParserError(
            "queries are conjunctive: negated literals are not allowed",
            span=_atom_span(tgd.negated[0]) or tgd.span,
        )
    if len(tgd.head) != 1:
        raise ParserError(
            "a query head must be a single atom",
            span=_atom_span(tgd.head[1]) or tgd.span,
        )
    head = tgd.head[0]
    body_variables = tgd.body_variables()
    output: list[Variable] = []
    for index, term in enumerate(head.args):
        arg_span = head.span.arg(index) if head.span is not None else None
        if not isinstance(term, Variable):
            raise ParserError(
                f"query output positions must be variables, got {term}",
                span=arg_span,
            )
        if term not in body_variables:
            raise ParserError(
                f"output variable {term} does not occur in the query body",
                span=arg_span,
            )
        output.append(term)
    return ConjunctiveQuery(
        tuple(output), tgd.body, head_predicate=head.predicate
    )


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``edge(a, B)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if parser._peek().type == TokenType.PERIOD:
        parser._next()
    if not parser.at_end():
        raise ParserError("trailing input after atom", parser._peek())
    return atom
