"""Vadalog-style surface syntax: lexer and parser."""

from .lexer import LexerError, Token, TokenType, tokenize
from .parser import ParserError, parse_atom, parse_program, parse_query

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "LexerError",
    "parse_program",
    "parse_query",
    "parse_atom",
    "ParserError",
]
