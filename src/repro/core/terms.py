"""Terms of the logical language: constants, variables, and labeled nulls.

The paper (Section 2) considers three disjoint, countably infinite sets:

* ``C`` — constants, the values stored in databases,
* ``N`` — labeled nulls, the fresh witnesses invented by the chase for
  existentially quantified variables,
* ``V`` — variables, used in rules and queries.

This module models each of them as an immutable, hashable class.  Term
identity is structural: two constants with the same value are the same
constant, two nulls with the same label are the same null, and so on.
All higher layers (atoms, substitutions, the chase, the proof-tree
machinery) are built on top of these three classes.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Null",
    "NullFactory",
    "fresh_variable_stream",
]


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant of ``C``.

    The payload ``value`` may be any hashable Python value (strings and
    integers in practice).  Constants are the only terms allowed in
    database facts and in certain answers.
    """

    value: Union[str, int]

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, slots=True)
class Variable:
    """A variable of ``V``, identified by its name.

    Variable names are plain strings.  The convention of the surface
    syntax (see :mod:`repro.lang`) is that identifiers starting with an
    uppercase letter or an underscore denote variables, but this class
    itself places no restriction on names: internal machinery freely
    invents names such as ``v3`` or ``x@2``.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Null:
    """A labeled null of ``N``.

    Nulls appear only in instances produced by the chase; they stand for
    unknown values invented to witness existential quantifiers.  Each
    null carries a numeric ``label`` that identifies it, and the
    ``depth`` at which the chase invented it (database constants live at
    depth 0; a null invented by a trigger whose deepest input term has
    depth *d* gets depth *d + 1*).  Depth participates neither in
    equality nor in hashing — it is bookkeeping used by termination
    control — so two nulls are equal iff their labels coincide.
    """

    label: int
    depth: int = 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("null", self.label))

    def __str__(self) -> str:
        return f"⊥{self.label}"

    def __repr__(self) -> str:
        return f"Null({self.label})"


Term = Union[Constant, Variable, Null]


class NullFactory:
    """A thread-safe source of fresh labeled nulls.

    The chase requires that every application of an existential TGD uses
    nulls "not occurring in I".  A single factory per chase run
    guarantees global freshness.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def fresh(self, depth: int = 0) -> Null:
        """Return a null that no previous call of this factory returned."""
        with self._lock:
            label = next(self._counter)
        return Null(label, depth)


def fresh_variable_stream(prefix: str = "v") -> "itertools.count":
    """Return an iterator of fresh :class:`Variable` objects.

    The stream yields ``Variable(f"{prefix}0")``, ``Variable(f"{prefix}1")``,
    and so on.  Callers that need variables disjoint from an existing set
    should choose a prefix that cannot collide (the parser never produces
    names containing ``'@'``, which internal code exploits).
    """
    return (Variable(f"{prefix}{i}") for i in itertools.count())


def is_constant(term: Term) -> bool:
    """Return True iff *term* is a constant of ``C``."""
    return isinstance(term, Constant)


def is_variable(term: Term) -> bool:
    """Return True iff *term* is a variable of ``V``."""
    return isinstance(term, Variable)


def is_null(term: Term) -> bool:
    """Return True iff *term* is a labeled null of ``N``."""
    return isinstance(term, Null)
