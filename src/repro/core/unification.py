"""Syntactic unification of atoms.

The language has no function symbols, so unification reduces to computing
a most general unifier (MGU) over flat argument tuples: a union-find over
variables where each class may additionally contain at most one *rigid*
term (a constant or a labeled null).  Two rigid terms clash unless equal.

Two flavours are exposed:

* :func:`mgu_atoms` — MGU of two atoms,
* :func:`mgu_pairs` — simultaneous MGU of a list of atom pairs, used by
  chunk-based resolution (Definition 4.3) where every atom of the chunk
  ``S1`` must unify with the (single) head atom of the TGD at once.

Both return a :class:`~repro.core.substitution.Substitution` mapping every
unified variable to the representative of its class (a rigid term if the
class contains one, otherwise a canonical variable of the class), or
``None`` if unification fails.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .atoms import Atom
from .substitution import Substitution
from .terms import Term, Variable

__all__ = ["mgu_atoms", "mgu_pairs", "unify_term_lists", "UnionFind"]


class UnionFind:
    """Union-find over terms with rigid-term conflict detection.

    Variables may merge freely; a class may absorb at most one distinct
    rigid term (constant or null).  Merging two classes holding different
    rigid terms fails.  The structure is deliberately small and
    self-contained — it is also reused by the canonical-renaming code in
    :mod:`repro.reasoning.canonical`.
    """

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}
        self._rigid: dict[Term, Optional[Term]] = {}

    def _ensure(self, term: Term) -> None:
        if term not in self._parent:
            self._parent[term] = term
            self._rigid[term] = term if not isinstance(term, Variable) else None

    def find(self, term: Term) -> Term:
        """Return the class representative of *term* (path-compressed)."""
        self._ensure(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term] != root:
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, a: Term, b: Term) -> bool:
        """Merge the classes of *a* and *b*; False on rigid-term clash."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        rigid_a, rigid_b = self._rigid[ra], self._rigid[rb]
        if rigid_a is not None and rigid_b is not None and rigid_a != rigid_b:
            return False
        self._parent[rb] = ra
        if rigid_a is None:
            self._rigid[ra] = rigid_b
        return True

    def rigid_of(self, term: Term) -> Optional[Term]:
        """The rigid term of *term*'s class, if any."""
        return self._rigid[self.find(term)]

    def classes(self) -> dict[Term, set[Term]]:
        """Materialize the current partition as representative → members."""
        grouped: dict[Term, set[Term]] = {}
        for term in list(self._parent):
            grouped.setdefault(self.find(term), set()).add(term)
        return grouped

    def to_substitution(self) -> Substitution:
        """Extract the MGU represented by the current partition.

        Every variable maps to the rigid term of its class if one exists,
        otherwise to a canonical member variable of the class (the one
        with the smallest name, for determinism).
        """
        mapping: dict[Term, Term] = {}
        for root, members in self.classes().items():
            rigid = self._rigid[root]
            if rigid is not None:
                target: Term = rigid
            else:
                target = min(
                    (m for m in members if isinstance(m, Variable)),
                    key=lambda v: v.name,
                )
            for member in members:
                if isinstance(member, Variable) and member != target:
                    mapping[member] = target
        return Substitution(mapping)


def unify_term_lists(
    pairs: Iterable[tuple[Sequence[Term], Sequence[Term]]]
) -> Optional[Substitution]:
    """Simultaneously unify corresponding positions of term-tuple pairs."""
    uf = UnionFind()
    for left, right in pairs:
        if len(left) != len(right):
            return None
        for s, t in zip(left, right):
            if not uf.union(s, t):
                return None
    return uf.to_substitution()


def mgu_atoms(a: Atom, b: Atom) -> Optional[Substitution]:
    """The MGU of two atoms, or None if they do not unify."""
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    return unify_term_lists([(a.args, b.args)])


def mgu_pairs(pairs: Sequence[tuple[Atom, Atom]]) -> Optional[Substitution]:
    """Simultaneous MGU of a list of atom pairs, or None on failure.

    Used to unify a chunk ``S1 = {α1, ..., αk}`` of a query with the head
    atom of a TGD: pass ``[(α1, head), ..., (αk, head)]``.
    """
    term_pairs = []
    for a, b in pairs:
        if a.predicate != b.predicate or a.arity != b.arity:
            return None
        term_pairs.append((a.args, b.args))
    return unify_term_lists(term_pairs)
