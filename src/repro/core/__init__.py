"""Core model: terms, atoms, substitutions, instances, TGDs, CQs, programs."""

from .atoms import Atom, Position
from .homomorphism import find_homomorphism, homomorphisms
from .instance import Database, Instance
from .program import Program
from .query import ConjunctiveQuery
from .substitution import Substitution
from .terms import Constant, Null, NullFactory, Term, Variable
from .tgd import TGD
from .unification import mgu_atoms, mgu_pairs

__all__ = [
    "Atom",
    "Position",
    "Constant",
    "Variable",
    "Null",
    "NullFactory",
    "Term",
    "Substitution",
    "Instance",
    "Database",
    "TGD",
    "Program",
    "ConjunctiveQuery",
    "homomorphisms",
    "find_homomorphism",
    "mgu_atoms",
    "mgu_pairs",
]
