"""Homomorphism search: matching sets of atoms into instances.

A homomorphism from a set of atoms A into a set of atoms B is a
substitution that is the identity on constants and maps every atom of A
into B.  This is the workhorse of:

* CQ evaluation (``q(I)`` is the set of images of the output variables
  under homomorphisms from ``atoms(q)`` to I),
* trigger detection in the chase (σ is applicable iff its body maps into
  the current instance),
* the restricted chase's head-satisfaction check.

The search is a standard backtracking join.  Atoms are processed in a
greedy most-selective-first order: at each step the pending atom with the
most bound arguments (under the partial assignment built so far) is
matched next, using the instance's position indexes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from .atoms import Atom
from .instance import Instance
from .substitution import Substitution
from .terms import Term, Variable

__all__ = ["homomorphisms", "find_homomorphism", "extends_to_homomorphism"]


def _bound_count(atom: Atom, assignment: Dict[Variable, Term]) -> int:
    """How many arguments of *atom* are ground under *assignment*."""
    return sum(
        1
        for t in atom.args
        if not isinstance(t, Variable) or t in assignment
    )


def _resolve(atom: Atom, assignment: Dict[Variable, Term]) -> Atom:
    """Apply the partial assignment to *atom* (unbound variables stay)."""
    return Atom(
        atom.predicate,
        tuple(
            assignment.get(t, t) if isinstance(t, Variable) else t
            for t in atom.args
        ),
    )


def homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    seed: Optional[Dict[Variable, Term]] = None,
) -> Iterator[Substitution]:
    """Yield every homomorphism from *atoms* into *instance*.

    *seed* optionally fixes some variables up front (used by the
    restricted chase to check whether a body match extends to the head).
    Each yielded substitution binds exactly the variables of *atoms*
    (plus the seed variables).
    """
    pending = list(atoms)
    assignment: Dict[Variable, Term] = dict(seed or {})

    def backtrack(remaining: list[Atom]) -> Iterator[Substitution]:
        if not remaining:
            yield Substitution(dict(assignment))
            return
        # Most-selective-first: pick the pending atom with the most
        # bound arguments; ties broken deterministically by string form.
        best_index = max(
            range(len(remaining)),
            key=lambda i: (
                _bound_count(remaining[i], assignment),
                -len(remaining[i].args),
                str(remaining[i]),
            ),
        )
        chosen = remaining[best_index]
        rest = remaining[:best_index] + remaining[best_index + 1:]
        pattern = _resolve(chosen, assignment)
        for stored in instance.matching(pattern):
            added: list[Variable] = []
            consistent = True
            for p_term, s_term in zip(pattern.args, stored.args):
                if isinstance(p_term, Variable):
                    seen = assignment.get(p_term)
                    if seen is None:
                        assignment[p_term] = s_term
                        added.append(p_term)
                    elif seen != s_term:
                        consistent = False
                        break
            if consistent:
                yield from backtrack(rest)
            for var in added:
                del assignment[var]

    return backtrack(pending)


def find_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    seed: Optional[Dict[Variable, Term]] = None,
) -> Optional[Substitution]:
    """The first homomorphism from *atoms* into *instance*, or None."""
    for hom in homomorphisms(atoms, instance, seed):
        return hom
    return None


def extends_to_homomorphism(
    partial: Substitution,
    atoms: Sequence[Atom],
    instance: Instance,
) -> bool:
    """True iff *partial* extends to a homomorphism of *atoms* into *instance*.

    This is the restricted-chase satisfaction check: given a body match
    ``h``, does ``h|frontier`` extend to the head atoms?
    """
    seed = {
        v: partial[v]
        for v in partial.variable_domain()
    }
    return find_homomorphism(atoms, instance, seed) is not None
