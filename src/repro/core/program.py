"""Programs: finite sets of TGDs with their schema bookkeeping.

A :class:`Program` wraps a sequence of TGDs and exposes

* the schema ``sch(Σ)`` (predicate → arity),
* the extensional/intensional split (``edb(Σ)`` are the predicates never
  occurring in a head, Section 6),
* the single-head normal form,
* membership tests for the classes the paper studies — WARD, PWL,
  linear/IL, FULL — delegated to :mod:`repro.analysis`.

Programs are immutable; transformations return new programs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .tgd import TGD, single_head_program_atoms

__all__ = ["Program"]


class Program:
    """An immutable finite set of TGDs (the paper's Σ)."""

    def __init__(self, tgds: Iterable[TGD], name: str = ""):
        self._tgds: tuple[TGD, ...] = tuple(tgds)
        self.name = name
        self._schema: Optional[dict[str, int]] = None

    # -- container interface -------------------------------------------------

    def __iter__(self) -> Iterator[TGD]:
        return iter(self._tgds)

    def __len__(self) -> int:
        return len(self._tgds)

    def __getitem__(self, index: int) -> TGD:
        return self._tgds[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._tgds == other._tgds

    def __hash__(self) -> int:
        return hash(self._tgds)

    @property
    def tgds(self) -> tuple[TGD, ...]:
        return self._tgds

    # -- schema ------------------------------------------------------------

    def schema(self) -> dict[str, int]:
        """``sch(Σ)``: predicate → arity for every predicate in Σ."""
        if self._schema is None:
            schema: dict[str, int] = {}
            for tgd in self._tgds:
                for atom in tgd.body + tgd.head + tgd.negated:
                    known = schema.get(atom.predicate)
                    if known is None:
                        schema[atom.predicate] = atom.arity
                    elif known != atom.arity:
                        raise ValueError(
                            f"predicate {atom.predicate!r} used with arities "
                            f"{known} and {atom.arity}"
                        )
            self._schema = schema
        return dict(self._schema)

    def predicates(self) -> set[str]:
        """All predicate names of ``sch(Σ)``."""
        return set(self.schema())

    def head_predicates(self) -> set[str]:
        """Predicates occurring in some head: the intensional predicates."""
        preds: set[str] = set()
        for tgd in self._tgds:
            preds.update(tgd.head_predicates())
        return preds

    def intensional_predicates(self) -> set[str]:
        """Alias for :meth:`head_predicates` (IDB predicates)."""
        return self.head_predicates()

    def extensional_predicates(self) -> set[str]:
        """``edb(Σ)``: predicates that never occur in a head (Section 6)."""
        return self.predicates() - self.head_predicates()

    # -- structural class tests -------------------------------------------

    def is_full(self) -> bool:
        """True iff every TGD is full (no existentials): a Datalog program."""
        return all(t.is_full() for t in self._tgds)

    def is_single_head(self) -> bool:
        """True iff every TGD has a single head atom."""
        return all(t.is_single_head() for t in self._tgds)

    def has_negation(self) -> bool:
        """True iff some TGD carries negated body literals.

        The surface syntax accepts ``not p(X̄)`` so that
        :mod:`repro.lint` can check safety and stratifiability
        statically; the positive evaluation engines reject such
        programs at planning time (see :mod:`repro.datalog.negation`
        for the stratified evaluation layer).
        """
        return any(t.negated for t in self._tgds)

    def is_warded(self) -> bool:
        """Membership in WARD (Definition 3.1)."""
        from ..analysis.wardedness import is_warded

        return is_warded(self)

    def is_piecewise_linear(self) -> bool:
        """Membership in PWL (Definition 4.1)."""
        from ..analysis.piecewise import is_piecewise_linear

        return is_piecewise_linear(self)

    def is_intensionally_linear(self) -> bool:
        """Membership in IL: at most one intensional body atom per TGD."""
        from ..analysis.piecewise import is_intensionally_linear

        return is_intensionally_linear(self)

    def max_body_size(self) -> int:
        """``max_{σ∈Σ} |body(σ)|`` — a factor of both node-width bounds."""
        return max(len(t.body) for t in self._tgds)

    # -- transformations ------------------------------------------------------

    def single_head(self, aux_prefix: str = "Aux") -> "Program":
        """The single-head normal form (idempotent on single-head input)."""
        if self.is_single_head():
            return self
        return Program(
            single_head_program_atoms(self._tgds, aux_prefix=aux_prefix),
            name=f"{self.name}+single_head" if self.name else "single_head",
        )

    def extend(self, extra: Iterable[TGD], name: str = "") -> "Program":
        """A new program with extra TGDs appended."""
        return Program(self._tgds + tuple(extra), name=name or self.name)

    def validate(self, allow_constants: bool = False) -> None:
        """Validate every TGD; see :meth:`TGD.validate`."""
        for tgd in self._tgds:
            tgd.validate(allow_constants=allow_constants)
        self.schema()  # raises on arity conflicts

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Program({len(self._tgds)} TGDs{label})"

    def pretty(self) -> str:
        """A readable multi-line rendering of the program."""
        return "\n".join(str(t) for t in self._tgds)
