"""Substitutions and homomorphisms.

A *substitution* from a set of terms T to a set of terms T' is a function
``h : T → T'``.  A *homomorphism* from a set of atoms A to a set of atoms
B is a substitution over the terms of A that is the identity on constants
and maps every atom of A into B (Section 2).

:class:`Substitution` is an immutable mapping from terms to terms with the
identity-on-constants convention baked in: constants (and any term not in
the explicit mapping) are mapped to themselves.  Homomorphism *search* —
finding homomorphisms from a set of atoms into an instance — lives in
:mod:`repro.core.homomorphism`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .atoms import Atom
from .terms import Constant, Term, Variable

__all__ = ["Substitution"]


class Substitution(Mapping[Term, Term]):
    """An immutable substitution, identity outside its explicit domain.

    The mapping is exposed through the standard :class:`Mapping`
    interface; application to terms, atoms, and collections of atoms goes
    through :meth:`apply_term`, :meth:`apply_atom`, and
    :meth:`apply_atoms`.  Substitutions compose with ``@`` following the
    usual convention: ``(g @ f)(x) == g(f(x))``.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Mapping[Term, Term]] = None):
        clean: dict[Term, Term] = {}
        if mapping:
            for key, value in mapping.items():
                if isinstance(key, Constant) and key != value:
                    raise ValueError(
                        "substitution must be the identity on constants; "
                        f"got {key} -> {value}"
                    )
                if key != value:
                    clean[key] = value
        self._map = clean

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, term: Term) -> Term:
        return self._map.get(term, term)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, term: object) -> bool:
        return term in self._map

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._map == other._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    # -- application -------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """The image of *term*: explicit mapping or the term itself."""
        return self._map.get(term, term)

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of *atom*."""
        return Atom(atom.predicate, tuple(self._map.get(t, t) for t in atom.args))

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Apply the substitution to a collection of atoms, in order."""
        return tuple(self.apply_atom(a) for a in atoms)

    def apply_terms(self, terms: Iterable[Term]) -> tuple[Term, ...]:
        """Apply the substitution to a sequence of terms, in order."""
        return tuple(self._map.get(t, t) for t in terms)

    # -- algebra -------------------------------------------------------------

    def restrict(self, domain: Iterable[Term]) -> "Substitution":
        """The restriction ``h|_S``: keep only mappings whose key is in *domain*."""
        keep = set(domain)
        return Substitution({k: v for k, v in self._map.items() if k in keep})

    def compose(self, first: "Substitution") -> "Substitution":
        """Return ``self ∘ first``: apply *first*, then *self*.

        ``(self.compose(first))(x) == self(first(x))`` for every term x.
        """
        combined: dict[Term, Term] = {}
        for key, value in first._map.items():
            combined[key] = self._map.get(value, value)
        for key, value in self._map.items():
            if key not in combined:
                combined[key] = value
        return Substitution(combined)

    def __matmul__(self, first: "Substitution") -> "Substitution":
        return self.compose(first)

    def extend(self, key: Term, value: Term) -> "Substitution":
        """A new substitution with one extra binding (key must be unbound)."""
        if key in self._map and self._map[key] != value:
            raise ValueError(f"term {key} already bound to {self._map[key]}")
        new_map = dict(self._map)
        new_map[key] = value
        return Substitution(new_map)

    def is_identity_on(self, terms: Iterable[Term]) -> bool:
        """True iff the substitution fixes every term in *terms*."""
        return all(self._map.get(t, t) == t for t in terms)

    def variable_domain(self) -> set[Variable]:
        """The variables the substitution moves."""
        return {t for t in self._map if isinstance(t, Variable)}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}->{v}" for k, v in sorted(
            self._map.items(), key=lambda kv: str(kv[0])))
        return f"Substitution({{{inner}}})"

    @staticmethod
    def identity() -> "Substitution":
        """The empty (identity) substitution."""
        return Substitution()
