"""Conjunctive queries.

A CQ over a schema S is ``q(x̄) :- ∃ȳ (R1(z̄1) ∧ ... ∧ Rn(z̄n))`` with
output variables x̄; we adopt the paper's rule-based syntax
``Q(x̄) ← R1(z̄1), ..., Rn(z̄n)`` (Section 2).  Evaluation ``q(I)`` over an
instance I is the set of tuples ``h(x̄)`` *of constants* with h a
homomorphism from ``atoms(q)`` to I — tuples containing nulls are not
answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .atoms import Atom, atoms_variables
from .homomorphism import homomorphisms
from .instance import Instance
from .substitution import Substitution
from .terms import Constant, Term, Variable

__all__ = ["ConjunctiveQuery", "stream_new_answers"]


def stream_new_answers(query: "ConjunctiveQuery", events, delta_of):
    """Surface a query's answers over an engine's event stream.

    *events* is any iterator of engine events carrying ``index`` (0 for
    the seeded database) and ``instance`` (the live store after the
    event); ``delta_of(event)`` returns the atoms the event added.  The
    seed event is evaluated in full; every later event is
    delta-evaluated on its query-relevant atoms only
    (:meth:`ConjunctiveQuery.evaluate_delta`), and each answer is
    yielded exactly once, in sorted order within its event.  This is
    the one answer-surfacing protocol shared by the chase, semi-naive,
    and operator-network streams.
    """
    seen: set[tuple[Constant, ...]] = set()
    predicates = query.predicates()
    for event in events:
        if event.index == 0:
            fresh = query.evaluate(event.instance)
        else:
            relevant = [
                a for a in delta_of(event) if a.predicate in predicates
            ]
            if not relevant:
                continue
            fresh = query.evaluate_delta(event.instance, relevant)
        for answer in sorted(fresh - seen, key=str):
            seen.add(answer)
            yield answer


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``Q(x̄) ← R1(z̄1), ..., Rn(z̄n)``.

    ``output`` is the tuple x̄ of output variables (possibly with
    repetitions, possibly empty for a Boolean CQ); every output variable
    must occur in some body atom.  ``head_predicate`` is the name used
    when the query is printed in rule form (``Q`` by default).
    """

    output: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    head_predicate: str = field(default="Q", compare=False)

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a CQ needs at least one body atom")
        object.__setattr__(self, "output", tuple(self.output))
        object.__setattr__(self, "atoms", tuple(self.atoms))
        body_vars = atoms_variables(self.atoms)
        for v in self.output:
            if v not in body_vars:
                raise ValueError(
                    f"output variable {v} does not occur in the query body"
                )

    # -- structure ---------------------------------------------------------

    def variables(self) -> set[Variable]:
        """All variables of the query body."""
        return atoms_variables(self.atoms)

    def output_variables(self) -> set[Variable]:
        """The set of output (distinguished) variables."""
        return set(self.output)

    def existential_variables(self) -> set[Variable]:
        """Body variables that are not output variables."""
        return self.variables() - set(self.output)

    def is_boolean(self) -> bool:
        """True iff the query has no output variables."""
        return not self.output

    def is_atomic(self) -> bool:
        """True iff the query body is a single atom."""
        return len(self.atoms) == 1

    def predicates(self) -> set[str]:
        """All predicate names in the query body."""
        return {a.predicate for a in self.atoms}

    def width(self) -> int:
        """``|q|``: the number of body atoms (the node-width unit)."""
        return len(self.atoms)

    # -- transformation -------------------------------------------------------

    def apply(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to body and output tuple.

        Output positions that become constants are dropped from the
        variable tuple interface; callers that instantiate outputs should
        use :meth:`instantiate` instead, which returns the Boolean CQ the
        decision problem works on.
        """
        new_atoms = substitution.apply_atoms(self.atoms)
        new_output = []
        for v in self.output:
            image = substitution.apply_term(v)
            if isinstance(image, Variable):
                new_output.append(image)
        return ConjunctiveQuery(
            tuple(new_output), new_atoms, head_predicate=self.head_predicate
        )

    def instantiate(self, answers: Sequence[Constant]) -> tuple[Atom, ...]:
        """The atoms of ``q(c̄)``: output variables replaced by constants.

        This is the first step of the Section 4.3 algorithm: "store in p
        the Boolean CQ obtained after instantiating the output variables
        of q with c̄".  Repeated output variables must receive consistent
        constants (guaranteed by construction here).
        """
        if len(answers) != len(self.output):
            raise ValueError(
                f"expected {len(self.output)} constants, got {len(answers)}"
            )
        mapping: dict[Term, Term] = {}
        for var, constant in zip(self.output, answers):
            existing = mapping.get(var)
            if existing is not None and existing != constant:
                raise ValueError(
                    f"output variable {var} bound to both {existing} and "
                    f"{constant}"
                )
            mapping[var] = constant
        subst = Substitution(mapping)
        return subst.apply_atoms(self.atoms)

    def rename(self, suffix: str) -> "ConjunctiveQuery":
        """Uniformly rename every variable ``x`` to ``x@suffix``."""
        mapping: dict[Term, Term] = {
            v: Variable(f"{v.name}@{suffix}") for v in self.variables()
        }
        subst = Substitution(mapping)
        return ConjunctiveQuery(
            tuple(subst.apply_term(v) for v in self.output),  # type: ignore[misc]
            subst.apply_atoms(self.atoms),
            head_predicate=self.head_predicate,
        )

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, instance: Instance) -> set[tuple[Constant, ...]]:
        """``q(I)``: all constant output tuples under homomorphisms into I."""
        answers: set[tuple[Constant, ...]] = set()
        for hom in homomorphisms(self.atoms, instance):
            image = tuple(hom.apply_term(v) for v in self.output)
            if all(isinstance(t, Constant) for t in image):
                answers.add(image)  # type: ignore[arg-type]
        return answers

    def evaluate_delta(
        self, instance: Instance, delta: Iterable[Atom]
    ) -> set[tuple[Constant, ...]]:
        """``q(I)`` restricted to matches that use at least one delta atom.

        *delta* must already be contained in *instance*.  Each body atom
        is pinned to each delta atom in turn and the remaining atoms are
        matched against the full instance, so over a run that feeds every
        new atom through here exactly the monotone closure of
        :meth:`evaluate` is reproduced: an answer surfaces in the round
        whose delta completes its earliest witnessing homomorphism.
        """
        answers: set[tuple[Constant, ...]] = set()
        delta_atoms = list(delta)
        for pin_index, pinned in enumerate(self.atoms):
            others = self.atoms[:pin_index] + self.atoms[pin_index + 1:]
            for delta_atom in delta_atoms:
                if (
                    pinned.predicate != delta_atom.predicate
                    or pinned.arity != delta_atom.arity
                ):
                    continue
                seed: dict[Variable, Term] = {}
                compatible = True
                for p_term, d_term in zip(pinned.args, delta_atom.args):
                    if isinstance(p_term, Variable):
                        bound = seed.get(p_term)
                        if bound is not None and bound != d_term:
                            compatible = False
                            break
                        seed[p_term] = d_term
                    elif p_term != d_term:
                        compatible = False
                        break
                if not compatible:
                    continue
                for hom in homomorphisms(list(others), instance, seed):
                    image = tuple(hom.apply_term(v) for v in self.output)
                    if all(isinstance(t, Constant) for t in image):
                        answers.add(image)  # type: ignore[arg-type]
        return answers

    def holds_in(self, instance: Instance) -> bool:
        """Boolean evaluation: does some homomorphism into I exist?"""
        for _ in homomorphisms(self.atoms, instance):
            return True
        return False

    def __str__(self) -> str:
        head_args = ",".join(str(v) for v in self.output)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{self.head_predicate}({head_args}) ← {body}"
