"""Source spans: where a construct came from, for diagnostics.

The lexer records 1-based ``line``/``column`` positions on every token;
the parser threads them onto atoms and rules as :class:`Span` /
:class:`AtomSpan` records so that every diagnostic (``repro.lint``,
:class:`~repro.lang.parser.ParserError`) points at real source.

Spans are *annotations*, not identity: they are excluded from equality
and hashing everywhere they are attached (two occurrences of
``edge(a, b)`` are the same atom wherever they were written), and every
construct built programmatically simply carries ``span=None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Span", "AtomSpan"]


@dataclass(frozen=True, slots=True)
class Span:
    """A contiguous source region, 1-based, end-exclusive on columns."""

    line: int
    column: int
    end_line: int
    end_column: int

    @classmethod
    def point(cls, line: int, column: int, width: int = 1) -> "Span":
        """A single-line span of *width* characters."""
        return cls(line, column, line, column + width)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both ``self`` and *other*."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max(
            (self.end_line, self.end_column),
            (other.end_line, other.end_column),
        )
        return Span(start[0], start[1], end[0], end[1])

    @property
    def location(self) -> str:
        """The conventional ``line:column`` rendering of the start."""
        return f"{self.line}:{self.column}"

    def __str__(self) -> str:
        return self.location


@dataclass(frozen=True, slots=True)
class AtomSpan:
    """Spans of one atom occurrence: the whole atom and each argument.

    ``args`` lines up with the atom's argument tuple; it may be empty
    for zero-ary atoms (or when only the whole-atom span is known).
    """

    whole: Span
    args: tuple[Span, ...] = ()

    def arg(self, index: int) -> Span:
        """The span of argument *index* (0-based), or the whole atom."""
        if 0 <= index < len(self.args):
            return self.args[index]
        return self.whole
