"""Atoms, predicates, and positions.

An atom is an expression ``R(t1, ..., tn)`` where ``R`` is an *n*-ary
predicate and each ``ti`` is a term (Section 2 of the paper).  A *fact*
is an atom all of whose arguments are constants.  A *position* ``R[i]``
identifies the *i*-th argument slot of ``R``; positions are the unit on
which the wardedness analysis (affected positions, Section 3) operates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .spans import AtomSpan
from .terms import Constant, Null, Term, Variable

__all__ = ["Atom", "Position", "atoms_variables", "atoms_terms", "atoms_nulls"]


@dataclass(frozen=True, slots=True)
class Position:
    """The position ``R[i]``: the *i*-th argument of predicate ``R``.

    Indices are 1-based, following the paper's notation ``R[1..n]``.
    """

    predicate: str
    index: int

    def __str__(self) -> str:
        return f"{self.predicate}[{self.index}]"


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``R(t1, ..., tn)`` over constants, variables, and nulls.

    ``span`` records where this occurrence was written when the atom
    came from the parser (see :mod:`repro.core.spans`); it is excluded
    from equality and hashing — atoms built programmatically or derived
    by the engines simply carry ``span=None``.
    """

    predicate: str
    args: tuple[Term, ...]
    span: Optional[AtomSpan] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        """Number of argument slots of this atom's predicate occurrence."""
        return len(self.args)

    def variables(self) -> set[Variable]:
        """The set ``var(α)`` of variables occurring in this atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> set[Constant]:
        """The set of constants occurring in this atom."""
        return {t for t in self.args if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        """The set of labeled nulls occurring in this atom."""
        return {t for t in self.args if isinstance(t, Null)}

    def is_fact(self) -> bool:
        """True iff every argument is a constant (the paper's *fact*)."""
        return all(isinstance(t, Constant) for t in self.args)

    def is_ground(self) -> bool:
        """True iff no argument is a variable (constants and nulls only)."""
        return not any(isinstance(t, Variable) for t in self.args)

    def positions(self) -> Iterator[tuple[Position, Term]]:
        """Yield ``(R[i], t_i)`` pairs for every argument slot (1-based)."""
        for i, term in enumerate(self.args, start=1):
            yield Position(self.predicate, i), term

    def positions_of(self, term: Term) -> set[Position]:
        """All positions of this atom at which *term* occurs."""
        return {
            Position(self.predicate, i)
            for i, t in enumerate(self.args, start=1)
            if t == term
        }

    def __str__(self) -> str:
        inner = ",".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"


def atoms_variables(atoms: Iterable[Atom]) -> set[Variable]:
    """The set ``var(A)`` of variables occurring in a collection of atoms."""
    result: set[Variable] = set()
    for atom in atoms:
        result.update(atom.variables())
    return result


def atoms_terms(atoms: Iterable[Atom]) -> set[Term]:
    """All terms occurring in a collection of atoms."""
    result: set[Term] = set()
    for atom in atoms:
        result.update(atom.args)
    return result


def atoms_nulls(atoms: Iterable[Atom]) -> set[Null]:
    """All labeled nulls occurring in a collection of atoms."""
    result: set[Null] = set()
    for atom in atoms:
        result.update(atom.nulls())
    return result


def make_atom(predicate: str, *args: Term) -> Atom:
    """Convenience constructor: ``make_atom("R", x, y)`` builds ``R(x,y)``."""
    return Atom(predicate, tuple(args))


def schema_of(atoms: Iterable[Atom]) -> dict[str, int]:
    """Infer a schema (predicate → arity) from a collection of atoms.

    Raises ``ValueError`` if the same predicate occurs with two different
    arities, which would make the collection ill-formed.
    """
    schema: dict[str, int] = {}
    for atom in atoms:
        known = schema.get(atom.predicate)
        if known is None:
            schema[atom.predicate] = atom.arity
        elif known != atom.arity:
            raise ValueError(
                f"predicate {atom.predicate!r} used with arities "
                f"{known} and {atom.arity}"
            )
    return schema
