"""Instances and databases.

An *instance* over a schema is a (possibly infinite — here: finite,
possibly growing) set of atoms containing constants and nulls; a
*database* is a finite set of facts, i.e., atoms over constants only
(Section 2).  Both are backed by per-predicate and per-(position, term)
indexes so that the chase, homomorphism search, and the reasoning
algorithms can retrieve matching atoms without scanning.

``Instance`` is the reference implementation of the
:class:`~repro.storage.base.FactStore` interface: the engines are
written against that interface, and alternative backends (columnar,
delta-overlay — see :mod:`repro.storage`) are drop-in replacements.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Set

from ..storage.base import FactStore, MemoryReport
from ..storage.memory import deep_sizeof
from .atoms import Atom, schema_of
from .terms import Constant, Null, Term

__all__ = ["Instance", "Database"]


class Instance(FactStore):
    """A mutable set of ground atoms (constants and nulls) with indexes.

    The two indexes are:

    * predicate index — predicate name → set of atoms,
    * position index — (predicate, position, term) → set of atoms, used
      to seed homomorphism search and trigger matching with bound values.
    """

    backend_name = "instance"

    def __init__(self, atoms: Iterable[Atom] = ()):
        self._atoms: Set[Atom] = set()
        self._by_predicate: Dict[str, Set[Atom]] = {}
        self._by_position: Dict[tuple[str, int, Term], Set[Atom]] = {}
        for atom in atoms:
            self.add(atom)

    # -- mutation ----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Insert *atom*; return True iff it was not already present."""
        if not atom.is_ground():
            raise ValueError(f"instances contain ground atoms only, got {atom}")
        self._check_mutable()
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._by_predicate.setdefault(atom.predicate, set()).add(atom)
        for i, term in enumerate(atom.args, start=1):
            self._by_position.setdefault((atom.predicate, i, term), set()).add(atom)
        return True

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Insert many atoms; return how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    def discard(self, atom: Atom) -> bool:
        """Remove *atom*; return True iff it was present.

        Both eager indexes shrink with the atom set; emptied index
        buckets are dropped so ``predicates()`` and the position probes
        never see ghost keys.
        """
        self._check_mutable()
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        bucket = self._by_predicate.get(atom.predicate)
        if bucket is not None:
            bucket.discard(atom)
            if not bucket:
                del self._by_predicate[atom.predicate]
        for i, term in enumerate(atom.args, start=1):
            key = (atom.predicate, i, term)
            positional = self._by_position.get(key)
            if positional is not None:
                positional.discard(atom)
                if not positional:
                    del self._by_position[key]
        return True

    # -- queries -----------------------------------------------------------

    def __contains__(self, atom: object) -> bool:
        return atom in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def atoms(self) -> frozenset[Atom]:
        """A frozen snapshot of the current atom set."""
        return frozenset(self._atoms)

    def with_predicate(self, predicate: str) -> Set[Atom]:
        """All atoms whose predicate is *predicate* (live view copy)."""
        return set(self._by_predicate.get(predicate, ()))

    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        """All atoms whose predicate is *predicate* (FactStore form)."""
        return iter(self.with_predicate(predicate))

    def count(self, predicate: Optional[str] = None) -> int:
        """Number of stored atoms, optionally restricted to a predicate."""
        if predicate is None:
            return len(self._atoms)
        return len(self._by_predicate.get(predicate, ()))

    def predicates(self) -> set[str]:
        """All predicate names with at least one atom."""
        return {p for p, s in self._by_predicate.items() if s}

    def matching_bound(
        self,
        predicate: str,
        bound: Mapping[int, Term],
        arity: Optional[int] = None,
    ) -> Iterator[Atom]:
        """Atoms of *predicate* agreeing with every bound (1-based) position.

        Uses the most selective available position index; falls back to
        the predicate index when *bound* is empty.
        """
        candidates: Optional[Set[Atom]] = None
        for position, term in bound.items():
            bucket = self._by_position.get((predicate, position, term), set())
            if candidates is None or len(bucket) < len(candidates):
                candidates = bucket
            if not bucket:
                return
        if candidates is None:
            candidates = self._by_predicate.get(predicate, set())
        # Snapshot: the interface allows callers to add while consuming.
        for stored in tuple(candidates):
            if arity is not None and stored.arity != arity:
                continue
            if all(
                position <= stored.arity
                and stored.args[position - 1] == term
                for position, term in bound.items()
            ):
                yield stored

    # ``matching`` (pattern form, repeated variables respected) is
    # inherited from FactStore and derives from matching_bound, so the
    # match semantics live in exactly one place (storage.base).

    def active_domain(self) -> set[Term]:
        """``dom(I)``: every constant and null occurring in the instance."""
        domain: set[Term] = set()
        for atom in self._atoms:
            domain.update(atom.args)
        return domain

    def constants(self) -> set[Constant]:
        """All constants occurring in the instance."""
        return {t for t in self.active_domain() if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        """All labeled nulls occurring in the instance."""
        return {t for t in self.active_domain() if isinstance(t, Null)}

    def schema(self) -> dict[str, int]:
        """Predicate → arity map inferred from the stored atoms."""
        return schema_of(self._atoms)

    def copy(self) -> "Instance":
        """An independent copy sharing no mutable state."""
        return Instance(self._atoms)

    def memory_report(self, seen: Optional[set[int]] = None) -> MemoryReport:
        """Byte accounting: atom payload vs the two eager indexes."""
        if seen is None:
            seen = set()
        atoms_bytes = deep_sizeof(self._atoms, seen)
        predicate_bytes = deep_sizeof(self._by_predicate, seen)
        position_bytes = deep_sizeof(self._by_position, seen)
        return MemoryReport(
            backend=self.backend_name,
            atom_count=len(self._atoms),
            term_count=len(self.active_domain()),
            components={
                "atoms": atoms_bytes,
                "predicate_index": predicate_bytes,
                "position_index": position_bytes,
            },
        )

    def __repr__(self) -> str:
        return f"Instance({len(self._atoms)} atoms)"


class Database(Instance):
    """A finite set of *facts*: atoms over constants only (no nulls)."""

    def add(self, atom: Atom) -> bool:
        if not atom.is_fact():
            raise ValueError(
                f"databases contain facts (constants only), got {atom}"
            )
        return super().add(atom)

    def copy(self) -> "Database":
        return Database(self._atoms)

    def to_instance(self) -> Instance:
        """An :class:`Instance` copy, suitable as the chase's ``I0``."""
        return Instance(self._atoms)

    def __repr__(self) -> str:
        return f"Database({len(self._atoms)} facts)"
