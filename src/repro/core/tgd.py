"""Tuple-generating dependencies (TGDs).

A TGD is a first-order sentence ``∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))`` where φ
(the *body*) and ψ (the *head*) are conjunctions of atoms (Section 2).
Following the paper we usually write it as ``φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)``.

Key derived notions implemented here:

* ``front(σ)`` — the frontier: variables occurring in both body and head,
* ``var∃(σ)`` — the existentially quantified (head-only) variables,
* variable renaming ``σ_o`` (uniform renaming used by resolution steps),
* the single-head normal form used by Section 4.2 ("we assume, w.l.o.g.,
  TGDs with only one atom in the head"), via the standard
  certain-answer-preserving transformation of Calì, Gottlob & Pieris
  (reference [11] of the paper): a multi-head TGD is split through a
  fresh auxiliary predicate collecting the frontier and existential
  variables, followed by one projection rule per original head atom.

The paper's definition disallows constants in TGDs.  We follow that by
default but allow opting out (``allow_constants=True``) because practical
Vadalog programs do use constants; the static analyses treat constant
occurrences as trivially harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .atoms import Atom, atoms_variables
from .spans import Span
from .substitution import Substitution
from .terms import Constant, Term, Variable

__all__ = ["TGD", "single_head_program_atoms"]


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``body → ∃z̄ head``.

    ``body`` and ``head`` are tuples of atoms.  Existential variables are
    not written explicitly: every variable occurring in the head but not
    in the body is existentially quantified, exactly as in the rule-based
    surface syntax of Datalog∃.

    ``negated`` holds the rule's negated body literals (``not p(X̄)`` in
    the surface syntax).  The evaluation engines cover positive
    Datalog±; negated literals are carried for *static analysis*
    (:mod:`repro.lint` safety and stratifiability passes) and for the
    dedicated stratified layer (:mod:`repro.datalog.negation`) — the
    planner rejects negated programs rather than silently ignoring the
    literals.  ``span`` records where the rule was written (parser
    provenance; excluded from equality like every span).
    """

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    label: str = field(default="", compare=False)
    negated: tuple[Atom, ...] = ()
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("a TGD needs a non-empty body")
        if not self.head:
            raise ValueError("a TGD needs a non-empty head")
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "head", tuple(self.head))
        if not isinstance(self.negated, tuple):
            object.__setattr__(self, "negated", tuple(self.negated))

    # -- variable structure --------------------------------------------------

    def body_variables(self) -> set[Variable]:
        """Variables occurring in the body."""
        return atoms_variables(self.body)

    def head_variables(self) -> set[Variable]:
        """Variables occurring in the head."""
        return atoms_variables(self.head)

    def frontier(self) -> set[Variable]:
        """``front(σ)``: variables occurring in both body and head."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> set[Variable]:
        """``var∃(σ)``: head variables not occurring in the body."""
        return self.head_variables() - self.body_variables()

    def variables(self) -> set[Variable]:
        """All variables of the TGD."""
        return self.body_variables() | self.head_variables()

    def constants(self) -> set[Constant]:
        """All constants mentioned by the TGD (empty for paper-strict TGDs)."""
        found: set[Constant] = set()
        for atom in self.body + self.head:
            found.update(atom.constants())
        return found

    # -- structural properties ------------------------------------------------

    def is_full(self) -> bool:
        """True iff the TGD has no existential variables (a Datalog rule)."""
        return not self.existential_variables()

    def is_single_head(self) -> bool:
        """True iff the head consists of exactly one atom."""
        return len(self.head) == 1

    def predicates(self) -> set[str]:
        """All predicate names occurring in the TGD."""
        return {a.predicate for a in self.body + self.head}

    def body_predicates(self) -> set[str]:
        return {a.predicate for a in self.body}

    def head_predicates(self) -> set[str]:
        return {a.predicate for a in self.head}

    def negated_predicates(self) -> set[str]:
        return {a.predicate for a in self.negated}

    def has_negation(self) -> bool:
        """True iff the rule carries negated body literals."""
        return bool(self.negated)

    # -- renaming ----------------------------------------------------------

    def rename(self, suffix: str) -> "TGD":
        """The TGD ``σ_o``: every variable ``x`` renamed to ``x@suffix``.

        Resolution steps use this to keep rule variables disjoint from
        query variables ("to avoid undesirable clatter among variables").
        """
        mapping: dict[Term, Term] = {
            v: Variable(f"{v.name}@{suffix}") for v in self.variables()
        }
        subst = Substitution(mapping)
        return TGD(
            subst.apply_atoms(self.body),
            subst.apply_atoms(self.head),
            label=self.label,
            negated=subst.apply_atoms(self.negated),
        )

    def apply(self, substitution: Substitution) -> "TGD":
        """Apply a substitution to body and head."""
        return TGD(
            substitution.apply_atoms(self.body),
            substitution.apply_atoms(self.head),
            label=self.label,
            negated=substitution.apply_atoms(self.negated),
        )

    def validate(self, allow_constants: bool = False) -> None:
        """Check paper-strict well-formedness.

        Raises ``ValueError`` if the TGD mentions constants while
        *allow_constants* is False, or if it mentions nulls (never
        allowed: nulls belong to instances, not rules).
        """
        for atom in self.body + self.head:
            for term in atom.args:
                if isinstance(term, Constant) and not allow_constants:
                    raise ValueError(
                        f"TGD {self} mentions constant {term}; the paper's "
                        "TGDs are constant-free (pass allow_constants=True "
                        "to accept practical Vadalog rules)"
                    )
                if not isinstance(term, (Constant, Variable)):
                    raise ValueError(f"TGD {self} mentions non-rule term {term}")

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        if self.negated:
            body += ", " + ", ".join(f"not {a}" for a in self.negated)
        head = ", ".join(str(a) for a in self.head)
        exist = self.existential_variables()
        prefix = ""
        if exist:
            names = ",".join(sorted(v.name for v in exist))
            prefix = f"∃{names} "
        return f"{body} → {prefix}{head}"


def single_head_program_atoms(
    tgds: Sequence[TGD], aux_prefix: str = "Aux"
) -> list[TGD]:
    """Convert a set of TGDs into single-head normal form.

    Each multi-head TGD ``φ(x̄,ȳ) → ∃z̄ (h1, ..., hk)`` becomes

    * ``φ(x̄,ȳ) → ∃z̄ Aux_i(x̄', z̄)`` where ``x̄'`` is the frontier, and
    * ``Aux_i(x̄', z̄) → h_j`` for each j ∈ [k].

    The transformation preserves certain answers (paper reference [11])
    and maps warded sets to warded sets and piece-wise linear sets to
    piece-wise linear sets: the auxiliary predicate inherits the
    recursion structure of the original head.
    Single-head TGDs pass through unchanged.
    """
    result: list[TGD] = []
    counter = 0
    for tgd in tgds:
        if tgd.is_single_head():
            result.append(tgd)
            continue
        frontier = sorted(tgd.frontier(), key=lambda v: v.name)
        existentials = sorted(tgd.existential_variables(), key=lambda v: v.name)
        aux_args = tuple(frontier + existentials)
        aux_name = f"{aux_prefix}_{counter}"
        counter += 1
        aux_atom = Atom(aux_name, aux_args)
        result.append(
            TGD(
                tgd.body, (aux_atom,),
                label=tgd.label or "split",
                negated=tgd.negated,
                span=tgd.span,
            )
        )
        for head_atom in tgd.head:
            result.append(
                TGD((aux_atom,), (head_atom,), label=f"{tgd.label or 'split'}/proj")
            )
    return result
