"""The Theorem 5.1 machinery: tiling systems, reduction, direct solver."""

from .reduction import (
    TilingReduction,
    build_reduction,
    reduction_class_profile,
    reduction_holds_within,
    tiling_program,
    tiling_query,
)
from .solver import enumerate_rows, find_tiling, has_tiling_within
from .system import TilingSystem, is_valid_tiling

__all__ = [
    "TilingSystem",
    "is_valid_tiling",
    "enumerate_rows",
    "find_tiling",
    "has_tiling_within",
    "build_reduction",
    "TilingReduction",
    "tiling_program",
    "tiling_query",
    "reduction_class_profile",
    "reduction_holds_within",
]
