"""The Theorem 5.1 reduction: UnboundedTiling ⟶ CQAns(PWL).

Given a tiling system T the reduction produces a database D_T, a fixed
set Σ of TGDs in PWL (but **not** in WARD), and a fixed Boolean CQ q,
such that T has a tiling iff () ∈ cert(q, D_T, Σ).  Σ and q do not
depend on T; only D_T does.  The construction (verbatim from the paper):

* ``Row(p, c, s, e)`` encodes a row with id *c* extending row *p*,
  starting with tile *s* and ending with tile *e*; rows are created by
  two TGDs (single-tile rows, and H-extension inventing a fresh row id);
* ``Comp(x, x')`` relates vertically compatible row ids, built in
  lockstep along the two rows;
* ``CTiling(x, y)`` collects rows that can appear as the last row of a
  candidate tiling stack whose first row starts with the start tile,
  with *y* the row's first tile;
* the query asks for a ``CTiling`` row starting with the finish tile.

Since the chase of D_T under Σ is infinite whenever H allows unbounded
rows, the reproduction demonstrates the reduction through *bounded*
runs: :func:`reduction_holds_within` chases to a depth sufficient for
tilings of bounded size and compares against the direct solver — the
semi-decision behaviour an undecidable problem admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from ..chase.runner import chase
from ..chase.termination import DepthPolicy
from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from ..lang.parser import parse_program, parse_query
from .solver import has_tiling_within
from .system import TilingSystem

__all__ = [
    "TilingReduction",
    "build_reduction",
    "tiling_program",
    "tiling_query",
    "reduction_holds_within",
]

_PROGRAM_TEXT = """
    % Rows that respect the horizontal constraints.
    row(Z, Z, X, X)  :- tile(X).
    row(X, U, Y, W)  :- row(_, X, Y, Z), h(Z, W).

    % Pairs of vertically compatible rows, built in lockstep.
    comp(X, Xp)      :- row(X, X, Y, Y), row(Xp, Xp, Yp, Yp), v(Y, Yp).
    comp(Y, Yp)      :- row(X, Y, _, Z), row(Xp, Yp, _, Zp),
                        comp(X, Xp), v(Z, Zp).

    % Candidate tilings with their bottom-left tile.
    ctiling(X, Y)    :- row(_, X, Y, Z), start(Y), right(Z).
    ctiling(Y, Z)    :- ctiling(X, _), row(_, Y, Z, W),
                        comp(X, Y), le(Z), right(W).
"""


@dataclass
class TilingReduction:
    """The (D_T, Σ, q) triple of the Theorem 5.1 reduction."""

    database: Database
    program: Program
    query: ConjunctiveQuery
    system: TilingSystem


def tiling_program() -> Program:
    """The fixed TGD set Σ (independent of the tiling system)."""
    program, leftover = parse_program(_PROGRAM_TEXT, name="tiling-reduction")
    assert len(leftover) == 0, "the reduction program text contains no facts"
    return program


def tiling_query() -> ConjunctiveQuery:
    """The fixed Boolean CQ: ``Q ← CTiling(x, y), Finish(y)``."""
    return parse_query("q() :- ctiling(X, Y), finish(Y).")


def build_reduction(system: TilingSystem) -> TilingReduction:
    """Assemble D_T, Σ, and q for the given tiling system."""
    database = Database()
    for tile in sorted(system.tiles):
        database.add(Atom("tile", (Constant(tile),)))
    for tile in sorted(system.left):
        database.add(Atom("le", (Constant(tile),)))
    for tile in sorted(system.right):
        database.add(Atom("right", (Constant(tile),)))
    for pair in sorted(system.horizontal):
        database.add(Atom("h", (Constant(pair[0]), Constant(pair[1]))))
    for pair in sorted(system.vertical):
        database.add(Atom("v", (Constant(pair[0]), Constant(pair[1]))))
    database.add(Atom("start", (Constant(system.start),)))
    database.add(Atom("finish", (Constant(system.finish),)))
    return TilingReduction(
        database=database,
        program=tiling_program(),
        query=tiling_query(),
        system=system,
    )


def reduction_class_profile() -> Tuple[bool, bool]:
    """(is PWL, is warded) of the reduction program — expected (True, False).

    Theorem 5.1 hinges on Σ being piece-wise linear yet *not* warded:
    the lockstep ``Comp`` rules join two dangerous row-id variables
    coming from different atoms, which no single ward can cover.
    """
    program = tiling_program()
    return is_piecewise_linear(program), is_warded(program)


def reduction_holds_within(
    system: TilingSystem,
    max_width: int,
    max_height: int,
    *,
    chase_depth: Optional[int] = None,
    max_atoms: int = 200000,
) -> Tuple[bool, bool]:
    """Compare the reduction against the direct solver on bounded instances.

    Returns ``(reduction_answer, solver_answer)``.  The chase depth
    needed for a tiling of width W and height M is bounded by the number
    of row-extension steps, W·(M+1) plus slack; callers may override.
    The reduction side is a *semi-decision*: a bounded chase that
    answers True is definitive, False only means "no tiling within the
    budget".
    """
    reduction = build_reduction(system)
    depth = chase_depth if chase_depth is not None else max_width + 2
    result = chase(
        reduction.database,
        reduction.program,
        variant="restricted",
        policy=DepthPolicy(depth),
        max_atoms=max_atoms,
    )
    reduction_answer = result.evaluate(reduction.query) == {()}
    solver_answer = has_tiling_within(system, max_width, max_height)
    return reduction_answer, solver_answer
