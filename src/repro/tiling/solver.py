"""A direct bounded tiling solver — ground truth for the E5 benchmark.

The unbounded tiling problem is undecidable, so no complete solver
exists; the reproduction needs only a *bounded* search (does a tiling of
width ≤ W and height ≤ M exist?) that mirrors the bounded chase of the
Section 5 reduction.  The solver enumerates rows left-to-right (H-valid,
right-terminated) and stacks them (V-compatible), exactly the structure
the reduction's Row/Comp/CTiling predicates build.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from .system import Tile, TilingSystem, is_valid_tiling

__all__ = ["enumerate_rows", "find_tiling", "has_tiling_within"]


def enumerate_rows(
    system: TilingSystem,
    width: int,
    first_tiles: Sequence[Tile],
) -> Iterator[Tuple[Tile, ...]]:
    """All H-valid rows of exactly *width* tiles.

    The row must begin with one of *first_tiles* and end with a
    right-border tile — matching the reduction's ``CTiling`` side
    conditions (``Start``/``Le`` on the first tile, ``Right`` on the
    last).
    """

    def extend(prefix: List[Tile]) -> Iterator[Tuple[Tile, ...]]:
        if len(prefix) == width:
            if prefix[-1] in system.right:
                yield tuple(prefix)
            return
        for tile in sorted(system.tiles):
            if (prefix[-1], tile) in system.horizontal:
                prefix.append(tile)
                yield from extend(prefix)
                prefix.pop()

    for first in sorted(set(first_tiles)):
        if first in system.tiles:
            yield from extend([first])


def _compatible(
    system: TilingSystem, upper: Sequence[Tile], lower: Sequence[Tile]
) -> bool:
    return all(
        (top, bottom) in system.vertical for top, bottom in zip(upper, lower)
    )


def find_tiling(
    system: TilingSystem,
    max_width: int,
    max_height: int,
) -> Optional[List[Tuple[Tile, ...]]]:
    """A tiling with width ≤ *max_width* and height ≤ *max_height*, or None.

    Performs, per width, a depth-first search over V-compatible row
    stacks: the first row must start with the start tile, subsequent
    rows with left-border tiles, and the accepting row with the finish
    tile.
    """
    for width in range(1, max_width + 1):
        first_rows = list(enumerate_rows(system, width, [system.start]))
        next_rows = list(enumerate_rows(system, width, sorted(system.left)))

        def search(stack: List[Tuple[Tile, ...]]) -> Optional[List[Tuple[Tile, ...]]]:
            if stack[-1][0] == system.finish:
                candidate = list(stack)
                if is_valid_tiling(system, candidate):
                    return candidate
            if len(stack) >= max_height:
                return None
            for row in next_rows:
                if _compatible(system, stack[-1], row):
                    stack.append(row)
                    found = search(stack)
                    stack.pop()
                    if found is not None:
                        return found
            return None

        for first in first_rows:
            found = search([first])
            if found is not None:
                return found
    return None


def has_tiling_within(
    system: TilingSystem, max_width: int, max_height: int
) -> bool:
    """Decision form of :func:`find_tiling`."""
    return find_tiling(system, max_width, max_height) is not None
