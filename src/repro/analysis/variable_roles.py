"""Harmless, harmful, and dangerous body variables (Section 3).

Fix a TGD σ of a set Σ and a variable x occurring in ``body(σ)``:

* x is **harmless** if at least one occurrence of x in the body is at a
  position of ``nonaff(Σ)`` — such a variable can only unify with
  constants during the chase;
* x is **harmful** if it is not harmless — every body occurrence is at
  an affected position, so x may unify with a labeled null;
* x is **dangerous** if it is harmful *and* belongs to the frontier —
  the null it may carry would be propagated to the head.

Constants occurring in bodies (permitted in practical programs) need no
classification: they are their own fixed values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ..core.atoms import Position
from ..core.program import Program
from ..core.terms import Variable
from ..core.tgd import TGD
from .affected import affected_positions

__all__ = ["VariableRoles", "classify_variables", "classify_program"]


@dataclass(frozen=True)
class VariableRoles:
    """The role partition of one TGD's body variables."""

    harmless: frozenset[Variable]
    harmful: frozenset[Variable]
    dangerous: frozenset[Variable]

    def role_of(self, variable: Variable) -> str:
        """'harmless', 'harmful', or 'dangerous' (dangerous ⊆ harmful)."""
        if variable in self.dangerous:
            return "dangerous"
        if variable in self.harmful:
            return "harmful"
        if variable in self.harmless:
            return "harmless"
        raise KeyError(f"{variable} is not a body variable of this TGD")


def classify_variables(
    tgd: TGD,
    affected: Set[Position],
) -> VariableRoles:
    """Classify the body variables of *tgd* against a precomputed aff(Σ).

    ``dangerous ⊆ harmful`` always holds; ``harmless`` and ``harmful``
    partition the body variables.
    """
    harmless: set[Variable] = set()
    harmful: set[Variable] = set()
    dangerous: set[Variable] = set()
    frontier = tgd.frontier()

    for var in tgd.body_variables():
        occurrences = {
            position
            for atom in tgd.body
            for position, term in atom.positions()
            if term == var
        }
        if any(pos not in affected for pos in occurrences):
            harmless.add(var)
        else:
            harmful.add(var)
            if var in frontier:
                dangerous.add(var)

    return VariableRoles(
        frozenset(harmless), frozenset(harmful), frozenset(dangerous)
    )


def classify_program(program: Program) -> Dict[TGD, VariableRoles]:
    """Classify every TGD of *program* (aff(Σ) computed once)."""
    affected = affected_positions(program)
    return {tgd: classify_variables(tgd, affected) for tgd in program}
