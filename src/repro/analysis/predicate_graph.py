"""The predicate graph and mutual recursion (Section 4).

The predicate graph ``pg(Σ)`` of a set of TGDs is the directed graph
whose vertices are the predicates of ``sch(Σ)``, with an edge P → R iff
some TGD has P in its body and R in its head.  Two predicates are
*mutually recursive* iff some cycle of ``pg(Σ)`` contains both — i.e.,
they lie in the same strongly connected component *and* that component
contains a cycle (a single vertex only qualifies if it has a self-loop).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from ..core.program import Program

__all__ = ["PredicateGraph"]


class PredicateGraph:
    """``pg(Σ)`` with SCC decomposition and mutual-recursion queries.

    SCCs are computed once (Tarjan's algorithm, iterative to dodge
    recursion limits) and all queries are O(1) dictionary lookups after
    that.
    """

    def __init__(self, program: Program):
        self._vertices: Set[str] = set(program.schema())
        self._edges: Dict[str, Set[str]] = {v: set() for v in self._vertices}
        for tgd in program:
            for body_pred in tgd.body_predicates():
                for head_pred in tgd.head_predicates():
                    self._edges[body_pred].add(head_pred)
        self._scc_of: Dict[str, int] = {}
        self._sccs: List[FrozenSet[str]] = []
        self._compute_sccs()
        self._cyclic: Set[int] = self._find_cyclic_components()

    # -- construction helpers -------------------------------------------------

    def _compute_sccs(self) -> None:
        """Iterative Tarjan SCC over the predicate vertices."""
        index_counter = 0
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []

        for root in sorted(self._vertices):
            if root in index:
                continue
            work: List[tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self._edges[root])))
            ]
            index[root] = lowlink[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                vertex, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = index_counter
                        index_counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self._edges[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[vertex] = min(lowlink[vertex], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[vertex])
                if lowlink[vertex] == index[vertex]:
                    component: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == vertex:
                            break
                    scc_id = len(self._sccs)
                    self._sccs.append(frozenset(component))
                    for member in component:
                        self._scc_of[member] = scc_id

    def _find_cyclic_components(self) -> Set[int]:
        """Components containing a cycle: size > 1, or a self-loop."""
        cyclic: Set[int] = set()
        for scc_id, component in enumerate(self._sccs):
            if len(component) > 1:
                cyclic.add(scc_id)
            else:
                (only,) = component
                if only in self._edges[only]:
                    cyclic.add(scc_id)
        return cyclic

    # -- queries -----------------------------------------------------------

    def vertices(self) -> frozenset[str]:
        return frozenset(self._vertices)

    def successors(self, predicate: str) -> frozenset[str]:
        """Predicates R with an edge predicate → R."""
        return frozenset(self._edges.get(predicate, ()))

    def edges(self) -> set[tuple[str, str]]:
        """All edges of pg(Σ) as (source, target) pairs."""
        return {(p, r) for p, succs in self._edges.items() for r in succs}

    def mutually_recursive(self, p: str, r: str) -> bool:
        """True iff some cycle of pg(Σ) contains both *p* and *r*.

        Note ``mutually_recursive(p, p)`` is True only if *p* lies on a
        cycle (e.g., a self-loop).
        """
        if p not in self._scc_of or r not in self._scc_of:
            return False
        same = self._scc_of[p] == self._scc_of[r]
        return same and self._scc_of[p] in self._cyclic

    def rec(self, predicate: str) -> frozenset[str]:
        """``rec(P)``: the predicates mutually recursive with *predicate*."""
        scc_id = self._scc_of.get(predicate)
        if scc_id is None or scc_id not in self._cyclic:
            return frozenset()
        return self._sccs[scc_id]

    def is_recursive_predicate(self, predicate: str) -> bool:
        """True iff *predicate* lies on some cycle of pg(Σ)."""
        scc_id = self._scc_of.get(predicate)
        return scc_id is not None and scc_id in self._cyclic

    def strongly_connected_components(self) -> list[frozenset[str]]:
        """The SCCs in (reverse) topological discovery order."""
        return list(self._sccs)

    def condensation_order(self) -> list[frozenset[str]]:
        """SCCs in topological order (sources first).

        Tarjan emits components in reverse topological order, so the
        condensation order is simply the reversal.
        """
        return list(reversed(self._sccs))

    def has_cycle(self) -> bool:
        """True iff pg(Σ) contains any cycle (the program is recursive)."""
        return bool(self._cyclic)
