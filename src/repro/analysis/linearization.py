"""Elimination of unnecessary non-linear recursion (Section 1.2).

The paper observes that ~15% of the surveyed TGD-sets are not piece-wise
linear as written, but become piece-wise linear after a "standard
elimination procedure of unnecessary non-linear recursion".  The
motivating example rewrites the doubling transitive-closure rule

    E(x,y) → T(x,y)        T(x,y), T(y,z) → T(x,z)

into the right-linear version

    E(x,y) → T(x,y)        E(x,y), T(y,z) → T(x,z).

This module implements that procedure for the *associative composition
pattern*: a TGD whose body consists of exactly two atoms over the head
predicate T of the shape ``T(l̄, m̄), T(m̄, r̄) → T(l̄, r̄)`` (the argument
positions split into a prefix block and a suffix block, chained through
the middle block m̄, all variables distinct).  Such a rule is replaced by
one rule per *base* rule of T — a rule whose body has no predicate
mutually recursive with T and whose head atom carries no existential
variable — by unfolding the left recursive atom with the base body.
The classical left-deep-rotation argument for transitive closure shows
the rewriting preserves certain answers for this pattern.

Rules outside the pattern are left untouched; :func:`linearize` reports
whether the program became piece-wise linear.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.atoms import Atom
from ..core.program import Program
from ..core.substitution import Substitution
from ..core.terms import Term, Variable
from ..core.tgd import TGD
from .piecewise import is_piecewise_linear, recursive_body_atoms
from .predicate_graph import PredicateGraph

__all__ = ["linearize", "LinearizationResult", "find_composition_pattern"]


@dataclass(frozen=True)
class LinearizationResult:
    """Outcome of :func:`linearize`."""

    program: Program
    changed: bool
    piecewise_linear: bool
    notes: tuple[str, ...] = field(default=())


def find_composition_pattern(
    tgd: TGD,
) -> Optional[Tuple[Atom, Atom, int]]:
    """Detect the associative composition pattern in *tgd*.

    Returns ``(left_atom, right_atom, split)`` where *split* is the size
    of the prefix block: the rule has the shape
    ``T(l̄, m̄), T(m̄, r̄) → T(l̄, r̄)`` with ``|l̄| = split``.  Returns None
    if the TGD does not match.
    """
    if len(tgd.head) != 1 or len(tgd.body) != 2:
        return None
    head = tgd.head[0]
    first, second = tgd.body
    if not (head.predicate == first.predicate == second.predicate):
        return None
    arity = head.arity
    if first.arity != arity or second.arity != arity:
        return None
    head_vars = list(head.args)
    if len(set(head_vars)) != arity or not all(
        isinstance(t, Variable) for t in head_vars
    ):
        return None

    for left, right in ((first, second), (second, first)):
        for split in range(1, arity):
            prefix = head_vars[:split]
            suffix = head_vars[split:]
            middle = list(left.args[split:])
            if (
                list(left.args[:split]) == prefix
                and list(right.args[: arity - split]) == middle
                and list(right.args[arity - split:]) == suffix
                and all(isinstance(t, Variable) for t in middle)
                and len({*prefix, *suffix, *middle}) == len(prefix) + len(suffix) + len(middle)
            ):
                return left, right, split
    return None


def _base_rules(
    program: Program, predicate: str, graph: PredicateGraph
) -> List[TGD]:
    """Rules defining *predicate* whose body is recursion-free w.r.t. it
    and whose head atom for *predicate* has no existential variables."""
    bases: List[TGD] = []
    for tgd in program:
        if len(tgd.head) != 1 or tgd.head[0].predicate != predicate:
            continue
        if any(
            graph.mutually_recursive(atom.predicate, predicate)
            for atom in tgd.body
        ):
            continue
        head_atom = tgd.head[0]
        existentials = tgd.existential_variables()
        if any(
            isinstance(t, Variable) and t in existentials for t in head_atom.args
        ):
            continue
        bases.append(tgd)
    return bases


def _unfold(
    composition: TGD, left: Atom, base: TGD, counter: itertools.count
) -> Optional[TGD]:
    """Replace *left* in *composition*'s body by the body of *base*.

    The base rule is renamed apart, its head atom matched against *left*
    position-wise (all of *left*'s arguments are distinct variables, so
    the match is a plain substitution from base-head terms to the rule's
    variables).
    """
    renamed = base.rename(f"lin{next(counter)}")
    base_head = renamed.head[0]
    mapping: dict[Term, Term] = {}
    for base_term, rule_term in zip(base_head.args, left.args):
        if not isinstance(base_term, Variable):
            return None
        existing = mapping.get(base_term)
        if existing is not None and existing != rule_term:
            return None
        mapping[base_term] = rule_term
    subst = Substitution(mapping)
    new_body = tuple(
        subst.apply_atom(atom) for atom in renamed.body
    ) + tuple(a for a in composition.body if a is not left)
    return TGD(new_body, composition.head, label=f"{composition.label or 'lin'}")


def linearize(program: Program) -> LinearizationResult:
    """Apply the elimination procedure until PWL or no rule matches.

    Only single-head programs are rewritten; multi-head programs are
    normalized first (the normal form preserves the recursion classes).
    """
    current = program.single_head()
    counter = itertools.count()
    notes: List[str] = []
    changed = False

    for _ in range(len(current) + 1):  # each pass removes ≥ 1 violation
        if is_piecewise_linear(current):
            break
        graph = PredicateGraph(current)
        rewritten: List[TGD] = []
        progress = False
        for tgd in current:
            if progress:
                rewritten.append(tgd)
                continue
            if len(recursive_body_atoms(tgd, graph)) <= 1:
                rewritten.append(tgd)
                continue
            pattern = find_composition_pattern(tgd)
            if pattern is None:
                rewritten.append(tgd)
                continue
            left, _right, _split = pattern
            bases = _base_rules(current, left.predicate, graph)
            if not bases:
                rewritten.append(tgd)
                continue
            unfolded = [_unfold(tgd, left, base, counter) for base in bases]
            if any(u is None for u in unfolded):
                rewritten.append(tgd)
                continue
            rewritten.extend(u for u in unfolded if u is not None)
            notes.append(
                f"unfolded non-linear rule '{tgd}' through "
                f"{len(bases)} base rule(s) of {left.predicate}"
            )
            progress = True
            changed = True
        if not progress:
            break
        current = Program(rewritten, name=program.name)

    return LinearizationResult(
        program=current,
        changed=changed,
        piecewise_linear=is_piecewise_linear(current),
        notes=tuple(notes),
    )
