"""Wardedness (Definition 3.1).

A set Σ of TGDs is *warded* if for every TGD σ either ``body(σ)`` has no
dangerous variables, or there is a body atom α — a **ward** — such that

1. all dangerous variables of ``body(σ)`` occur in α, and
2. every variable that α shares with the rest of the body is harmless.

This module decides membership in WARD and, for diagnosis, produces a
witness report naming a ward for every TGD (or the reason none exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.atoms import Atom, atoms_variables
from ..core.program import Program
from ..core.tgd import TGD
from .affected import affected_positions
from .variable_roles import VariableRoles, classify_variables

__all__ = ["is_warded", "wardedness_report", "WardednessReport", "TGDWardInfo"]


@dataclass(frozen=True)
class TGDWardInfo:
    """Per-TGD outcome of the wardedness check."""

    tgd: TGD
    roles: VariableRoles
    ward: Optional[Atom]      # a witnessing ward, if one is needed and exists
    needs_ward: bool          # True iff the TGD has dangerous variables
    warded: bool              # True iff the TGD satisfies Definition 3.1
    failure: str = ""         # human-readable reason when warded is False


@dataclass(frozen=True)
class WardednessReport:
    """Aggregate outcome of checking a whole program."""

    warded: bool
    per_tgd: tuple[TGDWardInfo, ...]

    def violations(self) -> list[TGDWardInfo]:
        """The TGDs that break wardedness."""
        return [info for info in self.per_tgd if not info.warded]


def _check_tgd(tgd: TGD, roles: VariableRoles) -> TGDWardInfo:
    """Find a ward for one TGD, or explain why none exists."""
    dangerous = roles.dangerous
    if not dangerous:
        return TGDWardInfo(
            tgd=tgd, roles=roles, ward=None, needs_ward=False, warded=True
        )

    candidates: List[Atom] = [
        atom for atom in tgd.body if dangerous <= atom.variables()
    ]
    if not candidates:
        return TGDWardInfo(
            tgd=tgd,
            roles=roles,
            ward=None,
            needs_ward=True,
            warded=False,
            failure=(
                "dangerous variables "
                + "{" + ", ".join(sorted(v.name for v in dangerous)) + "}"
                + " do not occur together in any single body atom"
            ),
        )

    for candidate in candidates:
        rest = [a for a in tgd.body if a is not candidate]
        shared = candidate.variables() & atoms_variables(rest)
        if shared <= roles.harmless:
            return TGDWardInfo(
                tgd=tgd,
                roles=roles,
                ward=candidate,
                needs_ward=True,
                warded=True,
            )

    return TGDWardInfo(
        tgd=tgd,
        roles=roles,
        ward=None,
        needs_ward=True,
        warded=False,
        failure=(
            "every candidate ward shares a non-harmless variable with the "
            "rest of the body (a harmful join)"
        ),
    )


def wardedness_report(program: Program) -> WardednessReport:
    """Check Definition 3.1 for every TGD, with witnesses."""
    affected = affected_positions(program)
    infos = tuple(
        _check_tgd(tgd, classify_variables(tgd, affected)) for tgd in program
    )
    return WardednessReport(
        warded=all(info.warded for info in infos), per_tgd=infos
    )


def is_warded(program: Program) -> bool:
    """Membership in WARD: every TGD has no dangerous variables or a ward."""
    return wardedness_report(program).warded
