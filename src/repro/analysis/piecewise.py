"""Piece-wise linearity and related recursion classes (Section 4).

* **PWL** (Definition 4.1): Σ is piece-wise linear if every TGD has at
  most one body atom whose predicate is mutually recursive with a
  predicate of the head.
* **IL** (Section 5): Σ is intensionally linear if every TGD has at most
  one body atom whose predicate is intensional (occurs in some head of
  Σ).  IL ⊆ PWL, and IL generalizes linear Datalog with existentials.
* **linear Datalog**: full single-head TGDs with at most one intensional
  body atom.

The module also reports, per TGD, which body atoms are "recursive" in
the PWL sense — the optimizer (Section 7(2)) uses exactly this to bias
join ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.atoms import Atom
from ..core.program import Program
from ..core.tgd import TGD
from .predicate_graph import PredicateGraph

__all__ = [
    "is_piecewise_linear",
    "is_intensionally_linear",
    "is_linear_datalog",
    "piecewise_report",
    "PiecewiseReport",
    "recursive_body_atoms",
]


def recursive_body_atoms(
    tgd: TGD, graph: PredicateGraph
) -> list[Atom]:
    """Body atoms whose predicate is mutually recursive with a head predicate.

    These are the atoms PWL counts; the Vadalog optimizer treats the
    (at most one, for PWL programs) returned atom specially when
    ordering joins.
    """
    head_preds = tgd.head_predicates()
    recursive: list[Atom] = []
    for atom in tgd.body:
        if any(
            graph.mutually_recursive(atom.predicate, head_pred)
            for head_pred in head_preds
        ):
            recursive.append(atom)
    return recursive


@dataclass(frozen=True)
class PiecewiseReport:
    """Outcome of the PWL check, with per-TGD recursive-atom counts."""

    piecewise_linear: bool
    per_tgd: tuple[tuple[TGD, tuple[Atom, ...]], ...]

    def violations(self) -> list[tuple[TGD, tuple[Atom, ...]]]:
        """TGDs with two or more mutually recursive body atoms."""
        return [(t, atoms) for t, atoms in self.per_tgd if len(atoms) > 1]


def piecewise_report(program: Program) -> PiecewiseReport:
    """Check Definition 4.1 for every TGD of *program*."""
    graph = PredicateGraph(program)
    per_tgd = tuple(
        (tgd, tuple(recursive_body_atoms(tgd, graph))) for tgd in program
    )
    return PiecewiseReport(
        piecewise_linear=all(len(atoms) <= 1 for _, atoms in per_tgd),
        per_tgd=per_tgd,
    )


def is_piecewise_linear(program: Program) -> bool:
    """Membership in PWL (Definition 4.1)."""
    return piecewise_report(program).piecewise_linear


def is_intensionally_linear(program: Program) -> bool:
    """Membership in IL: ≤ 1 intensional body atom per TGD (Section 5)."""
    intensional = program.intensional_predicates()
    for tgd in program:
        count = sum(1 for atom in tgd.body if atom.predicate in intensional)
        if count > 1:
            return False
    return True


def is_linear_datalog(program: Program) -> bool:
    """Linear Datalog: full, single-head, and intensionally linear."""
    return (
        program.is_full()
        and program.is_single_head()
        and is_intensionally_linear(program)
    )
