"""Predicate levels and the node-width polynomials (Section 4.2).

For a set Σ of TGDs, ``ℓΣ`` is the unique function with

    ℓΣ(P) = max{ ℓΣ(R) | (R, P) ∈ E, R ∉ rec(P) } + 1

(``max ∅ = 0``), where E are the edges of the predicate graph and
``rec(P)`` the predicates mutually recursive with P.  The edges that
survive the ``R ∉ rec(P)`` filter form a DAG (an edge inside a common
cycle is excluded by definition), so the recurrence is well-founded and
a topological dynamic program computes all levels in linear time.

From levels the paper defines the node-width bounds used by the
reasoning algorithms:

* ``f_WARD∩PWL(q, Σ) = (|q| + 1) · max_P ℓΣ(P) · max_σ |body(σ)|``
  (linear proof trees, Theorem 4.8),
* ``f_WARD(q, Σ) = 2 · max(|q|, max_σ |body(σ)|)``
  (arbitrary proof trees, Theorem 4.9).
"""

from __future__ import annotations

from typing import Dict

from ..core.program import Program
from ..core.query import ConjunctiveQuery
from .predicate_graph import PredicateGraph

__all__ = [
    "predicate_levels",
    "max_level",
    "node_width_bound_pwl",
    "node_width_bound_ward",
]


def predicate_levels(
    program: Program, graph: PredicateGraph | None = None
) -> Dict[str, int]:
    """Compute ``ℓΣ(P)`` for every predicate P of sch(Σ)."""
    graph = graph or PredicateGraph(program)
    vertices = sorted(graph.vertices())

    # Keep only the non-mutually-recursive edges; they form a DAG.
    dag_preds: Dict[str, set[str]] = {v: set() for v in vertices}
    for source, target in graph.edges():
        if not graph.mutually_recursive(source, target):
            dag_preds[target].add(source)

    levels: Dict[str, int] = {}

    def resolve(predicate: str) -> int:
        # Iterative DFS with memoization (the DAG can be deep).
        stack = [predicate]
        while stack:
            current = stack[-1]
            if current in levels:
                stack.pop()
                continue
            missing = [p for p in dag_preds[current] if p not in levels]
            if missing:
                stack.extend(missing)
                continue
            incoming = [levels[p] for p in dag_preds[current]]
            levels[current] = (max(incoming) if incoming else 0) + 1
            stack.pop()
        return levels[predicate]

    for vertex in vertices:
        resolve(vertex)
    return levels


def max_level(program: Program) -> int:
    """``max_{P ∈ sch(Σ)} ℓΣ(P)`` — 0 for an empty schema."""
    levels = predicate_levels(program)
    return max(levels.values(), default=0)


def node_width_bound_pwl(query: ConjunctiveQuery, program: Program) -> int:
    """``f_WARD∩PWL(q, Σ)``: node-width bound for linear proof trees."""
    return (query.width() + 1) * max_level(program) * program.max_body_size()


def node_width_bound_ward(query: ConjunctiveQuery, program: Program) -> int:
    """``f_WARD(q, Σ)``: node-width bound for arbitrary proof trees."""
    return 2 * max(query.width(), program.max_body_size())
