"""Affected positions (Section 3).

The set ``aff(Σ)`` of affected positions of ``sch(Σ)`` is the least set
such that

1. if some TGD has an existentially quantified variable at position π,
   then π ∈ aff(Σ), and
2. if some TGD σ has a frontier variable x occurring in ``body(σ)``
   *only* at affected positions, and x occurs in ``head(σ)`` at position
   π, then π ∈ aff(Σ).

Affected positions over-approximate where labeled nulls can appear during
the chase; they are the foundation of the harmless/harmful/dangerous
variable classification and hence of wardedness.
"""

from __future__ import annotations

from typing import Set

from ..core.atoms import Position
from ..core.program import Program
from ..core.terms import Variable

__all__ = ["affected_positions", "nonaffected_positions", "all_positions"]


def all_positions(program: Program) -> set[Position]:
    """``pos(Σ)``: every position R[i] of every predicate of sch(Σ)."""
    positions: set[Position] = set()
    for predicate, arity in program.schema().items():
        for i in range(1, arity + 1):
            positions.add(Position(predicate, i))
    return positions


def affected_positions(program: Program) -> set[Position]:
    """Compute ``aff(Σ)`` by fixpoint iteration of the two rules above."""
    affected: Set[Position] = set()

    # Base case: positions of existentially quantified variables.
    for tgd in program:
        existentials = tgd.existential_variables()
        for atom in tgd.head:
            for position, term in atom.positions():
                if isinstance(term, Variable) and term in existentials:
                    affected.add(position)

    # Propagation: frontier variables occurring in the body only at
    # affected positions push their head positions into the set.
    changed = True
    while changed:
        changed = False
        for tgd in program:
            frontier = tgd.frontier()
            for var in frontier:
                body_positions = {
                    position
                    for atom in tgd.body
                    for position, term in atom.positions()
                    if term == var
                }
                if not body_positions or not body_positions <= affected:
                    continue
                for atom in tgd.head:
                    for position, term in atom.positions():
                        if term == var and position not in affected:
                            affected.add(position)
                            changed = True
    return affected


def nonaffected_positions(program: Program) -> set[Position]:
    """``nonaff(Σ) = pos(Σ) \\ aff(Σ)``."""
    return all_positions(program) - affected_positions(program)
