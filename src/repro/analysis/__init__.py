"""Static analysis: predicate graph, wardedness, piece-wise linearity."""

from .affected import affected_positions, all_positions, nonaffected_positions
from .levels import (
    max_level,
    node_width_bound_pwl,
    node_width_bound_ward,
    predicate_levels,
)
from .linearization import LinearizationResult, linearize
from .piecewise import (
    PiecewiseReport,
    is_intensionally_linear,
    is_linear_datalog,
    is_piecewise_linear,
    piecewise_report,
    recursive_body_atoms,
)
from .predicate_graph import PredicateGraph
from .variable_roles import VariableRoles, classify_program, classify_variables
from .wardedness import (
    TGDWardInfo,
    WardednessReport,
    is_warded,
    wardedness_report,
)

__all__ = [
    "affected_positions",
    "nonaffected_positions",
    "all_positions",
    "predicate_levels",
    "max_level",
    "node_width_bound_pwl",
    "node_width_bound_ward",
    "PredicateGraph",
    "VariableRoles",
    "classify_variables",
    "classify_program",
    "is_warded",
    "wardedness_report",
    "WardednessReport",
    "TGDWardInfo",
    "is_piecewise_linear",
    "piecewise_report",
    "PiecewiseReport",
    "is_intensionally_linear",
    "is_linear_datalog",
    "recursive_body_atoms",
    "linearize",
    "LinearizationResult",
]
