"""Command-line interface: ``python -m repro <command> ...``.

Four commands cover the everyday workflow of the library:

* ``classify FILE`` — parse a program and print its class memberships
  (warded, piece-wise linear, intensionally linear, linear Datalog,
  full Datalog), the predicate levels, and the node-width bounds;
* ``answer FILE --query "q(X,Y) :- t(X,Y)."`` — compute certain
  answers with the auto-dispatching engine;
* ``chase FILE`` — run the (bounded) restricted chase and print the
  derived instance;
* ``stats`` — regenerate the Section 1.2 recursion statistics over the
  synthetic benchmark corpus.

Program files use the same Vadalog-style surface syntax the parser
accepts everywhere else: facts ``e(a, b).`` and rules
``t(X, Z) :- e(X, Y), t(Y, Z).`` with head-only variables existential.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import (
    is_intensionally_linear,
    is_linear_datalog,
    is_piecewise_linear,
    is_warded,
    max_level,
    node_width_bound_pwl,
    node_width_bound_ward,
    predicate_levels,
)
from .chase import chase
from .lang.parser import parse_program, parse_query
from .reasoning import certain_answers
from .storage import BACKENDS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Warded Datalog∃ with piece-wise linear recursion — "
            "a reproduction of 'The Space-Efficient Core of Vadalog' "
            "(PODS 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify = commands.add_parser(
        "classify", help="print class memberships and analysis of a program"
    )
    classify.add_argument("file", type=Path, help="program file")
    classify.add_argument(
        "--query", help="optional CQ for the node-width bounds"
    )

    answer = commands.add_parser(
        "answer", help="compute certain answers of a query"
    )
    answer.add_argument("file", type=Path, help="program + facts file")
    answer.add_argument(
        "--query", required=True, help='e.g. "q(X,Y) :- t(X,Y)."'
    )
    answer.add_argument(
        "--method",
        default="auto",
        choices=("auto", "datalog", "pwl", "ward", "chase"),
        help="engine selection (default: dispatch on the program class)",
    )
    answer.add_argument(
        "--store",
        default="instance",
        choices=BACKENDS,
        help="fact-storage backend for materializing engines "
             "(default: instance)",
    )

    chase_cmd = commands.add_parser(
        "chase", help="run the restricted chase and print the instance"
    )
    chase_cmd.add_argument("file", type=Path, help="program + facts file")
    chase_cmd.add_argument(
        "--max-atoms", type=int, default=10000,
        help="instance-size budget (default 10000)",
    )
    chase_cmd.add_argument(
        "--store",
        default="instance",
        choices=BACKENDS,
        help="fact-storage backend (default: instance)",
    )
    chase_cmd.add_argument(
        "--memory-report", action="store_true",
        help="print the store's per-component byte accounting",
    )

    stats = commands.add_parser(
        "stats", help="Section 1.2 recursion statistics over the corpus"
    )
    stats.add_argument("--scale", type=int, default=2)
    stats.add_argument("--seed", type=int, default=2019)

    rewrite = commands.add_parser(
        "rewrite",
        help="rewrite (Σ, q) into an equivalent (PWL) Datalog program "
             "(Theorem 6.3 / Lemma 6.4)",
    )
    rewrite.add_argument("file", type=Path, help="program file")
    rewrite.add_argument(
        "--query", required=True, help='e.g. "q(X,Y) :- t(X,Y)."'
    )
    rewrite.add_argument(
        "--width", type=int, default=None,
        help="node-width bound (default: the theorem's polynomial)",
    )
    rewrite.add_argument(
        "--max-states", type=int, default=20000,
        help="canonical-CQ budget before truncating (default 20000)",
    )

    return parser


def _load(path: Path):
    try:
        text = path.read_text()
    except OSError as error:
        raise SystemExit(f"repro: cannot read {path}: {error}")
    return parse_program(text, name=path.stem)


def _cmd_classify(args, out) -> int:
    program, database = _load(args.file)
    print(f"program: {program.name or args.file.stem}", file=out)
    print(f"  TGDs: {len(program)}, facts: {len(database)}", file=out)
    print(f"  warded:               {is_warded(program)}", file=out)
    print(f"  piece-wise linear:    {is_piecewise_linear(program)}", file=out)
    print(f"  intensionally linear: {is_intensionally_linear(program)}",
          file=out)
    print(f"  linear Datalog:       {is_linear_datalog(program)}", file=out)
    print(f"  full (Datalog):       {program.is_full()}", file=out)
    normalized = program.single_head()
    levels = predicate_levels(normalized)
    print(f"  max predicate level:  {max_level(normalized)}", file=out)
    for predicate in sorted(levels):
        print(f"    level({predicate}) = {levels[predicate]}", file=out)
    if args.query:
        query = parse_query(args.query)
        print(
            f"  f_WARD∩PWL(q, Σ) = "
            f"{node_width_bound_pwl(query, normalized)}",
            file=out,
        )
        print(
            f"  f_WARD(q, Σ)     = "
            f"{node_width_bound_ward(query, normalized)}",
            file=out,
        )
    return 0


def _cmd_answer(args, out) -> int:
    program, database = _load(args.file)
    query = parse_query(args.query)
    answers = certain_answers(
        query, database, program, method=args.method, store=args.store
    )
    for row in sorted(answers, key=str):
        print("(" + ", ".join(str(c) for c in row) + ")", file=out)
    print(f"-- {len(answers)} certain answer(s)", file=out)
    return 0


def _cmd_chase(args, out) -> int:
    program, database = _load(args.file)
    result = chase(
        database, program, variant="restricted", max_atoms=args.max_atoms,
        store=args.store,
    )
    for atom in sorted(result.instance, key=str):
        print(atom, file=out)
    status = "saturated" if result.saturated else "truncated"
    print(
        f"-- {len(result.instance)} atoms, {result.fired} firings, {status}",
        file=out,
    )
    if args.memory_report:
        print(f"-- {result.instance.memory_report()}", file=out)
    return 0 if result.saturated else 3


def _cmd_rewrite(args, out) -> int:
    from .expressiveness import pwl_to_datalog, ward_to_datalog

    program, _ = _load(args.file)
    query = parse_query(args.query)
    rewriter = (
        pwl_to_datalog if is_piecewise_linear(program) else ward_to_datalog
    )
    rewriting = rewriter(
        query, program, width_bound=args.width, max_states=args.max_states
    )
    for rule in rewriting.program:
        print(rule, file=out)
    print(
        f"-- {rewriting.rules} rules over {rewriting.states} canonical "
        f"CQs, width bound {rewriting.width_bound}, "
        f"{'complete' if rewriting.complete else 'TRUNCATED'}",
        file=out,
    )
    print(f"-- query: {rewriting.query}", file=out)
    return 0 if rewriting.complete else 3


def _cmd_stats(args, out) -> int:
    from .benchsuite import classify_corpus, default_corpus

    stats = classify_corpus(
        default_corpus(base_seed=args.seed, scale=args.scale)
    )
    for bucket, count, fraction in stats.rows():
        print(f"{bucket:38s} {count:4d}  {fraction:6.1%}", file=out)
    print(
        f"{'piece-wise linear total':38s} "
        f"{stats.direct_pwl + stats.linearizable:4d}  "
        f"{stats.pwl_fraction:6.1%}",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "classify": _cmd_classify,
        "answer": _cmd_answer,
        "chase": _cmd_chase,
        "stats": _cmd_stats,
        "rewrite": _cmd_rewrite,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
