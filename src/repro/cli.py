"""Command-line interface: ``python -m repro <command> ...``.

The everyday workflow of the library, now built on the
:mod:`repro.api` session layer:

* ``classify FILE`` — parse a program and print its class memberships
  (warded, piece-wise linear, intensionally linear, linear Datalog,
  full Datalog), the predicate levels, and the node-width bounds;
* ``lint FILE...`` — run the static diagnostics engine
  (:mod:`repro.lint`) and print each finding with its stable code and
  source position (``--format json`` for machines, ``--strict`` to
  fail on warnings, ``--select``/``--ignore`` to filter by code
  prefix; ``lint --help`` lists every code);
* ``answer FILE --query "q(X,Y) :- t(X,Y)."`` — compute certain
  answers with the planner-dispatched engine (``--explain`` prints the
  query plan first);
* ``query FILE`` — load and compile a program **once**, then answer
  many queries against it: every ``--query`` flag in order, or an
  interactive ``?-`` loop over stdin when none is given;
* ``chase FILE`` — run the (bounded) restricted chase and print the
  derived instance;
* ``update FILE`` — apply EDB fact deltas (``+atom`` / ``-atom``
  lines from a file or stdin) through the incremental-maintenance
  layer: cached fixpoints are upgraded in place and the maintenance
  report (strata maintained, rederivations, fallbacks) is printed;
* ``stats`` — regenerate the Section 1.2 recursion statistics over the
  synthetic benchmark corpus;
* ``bench`` — run the scenario-matrix benchmark suite (all five
  families × engines × storage backends) through the session layer,
  cross-check answers across cells, and write one consolidated
  ``BENCH_suite.json`` (``--scale``, ``--suite``, ``--engine``,
  ``--store``, ``--out``);
* ``rewrite FILE --query ...`` — the Theorem 6.3 / Lemma 6.4 rewriting;
* ``serve FILE`` — run the concurrent reasoning daemon
  (:mod:`repro.server`): many clients over newline-delimited JSON,
  every query snapshot-isolated against live ``update`` batches;
  SIGTERM/SIGINT drain gracefully;
* ``client query|update|stats|ping|shutdown`` — talk to a running
  server with :class:`repro.server.ReasoningClient`;
* ``trace generate|replay|summarize`` — the workload harness
  (:mod:`repro.workloads`): generate a seeded, zipf-skewed NDJSON
  trace over a scenario family, replay it closed- or open-loop
  against an in-process session/service or a live server (latency
  percentiles, answer verification against per-version ground truth),
  or summarize a trace file.

Exit codes: 0 success, 1 lint findings (errors, or warnings under
``--strict``), 2 engine/usage errors (printed as ``repro: error:
...``, no traceback), 3 truncation/disagreement, 130 on interrupt.

Every subcommand accepts ``--store`` naming a fact-storage backend
(see :data:`repro.storage.BACKENDS`); an unknown name fails fast with
the valid choices.  Program files use the same Vadalog-style surface
syntax the parser accepts everywhere else: facts ``e(a, b).`` and rules
``t(X, Z) :- e(X, Y), t(Y, Z).`` with head-only variables existential.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis import (
    is_intensionally_linear,
    is_linear_datalog,
    node_width_bound_pwl,
    node_width_bound_ward,
)
from .api import ENGINES, EXEC_MODES, REWRITES, Session
from .chase import chase
from .lang.parser import parse_program, parse_query
from .lint import registered_codes
from .storage import BACKENDS

__all__ = ["main", "build_parser"]


#: Mirror of ``repro.benchsuite.harness`` constants (SCALES keys and
#: SUITES), kept static here so building the parser never imports the
#: harness and its five generator modules; a unit test pins the mirror
#: to the source of truth.
BENCH_SCALES = ("smoke", "small", "medium")
BENCH_SUITES = ("iwarded", "ibench", "chasebench", "dbpedia", "industrial")

#: Mirror of ``repro.workloads.generate`` constants (MIXES keys and
#: TRACE_FAMILIES), static for the same reason; pinned by the same test.
TRACE_MIXES = ("read-heavy", "churn", "lookup-heavy")
TRACE_FAMILIES = ("churn",)


def _store_backend(value: str) -> str:
    """argparse type for ``--store``: validate against the registry."""
    if value not in BACKENDS:
        raise argparse.ArgumentTypeError(
            f"unknown storage backend {value!r}; choose one of "
            f"{', '.join(BACKENDS)}"
        )
    return value


def _positive_int(value: str) -> int:
    """argparse type for counts that must be >= 1."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _byte_size(value: str) -> int:
    """argparse type for ``--memory-budget``: bytes, with k/m/g suffixes."""
    text = value.strip().lower()
    factor = 1
    for suffix, mult in (("k", 1024), ("m", 1024**2), ("g", 1024**3)):
        if text.endswith(suffix):
            text, factor = text[:-1], mult
            break
    try:
        parsed = int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a byte size: {value!r} (use e.g. 8000000, 8m, 2g)"
        )
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be positive, got {value!r}")
    return parsed


def _replay_rate(value: str):
    """argparse type for ``trace replay --rate``: ops/sec or 'trace'."""
    if value == "trace":
        return value
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a rate: {value!r} (ops/sec number, or 'trace' to "
            "honour the recorded schedule)"
        )
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"rate must be > 0, got {parsed}")
    return parsed


def _resolve_store(args):
    """The ``store=`` choice the engines get: the backend name, or a
    configured sharded factory when out-of-core flags are present."""
    budget = getattr(args, "memory_budget", None)
    spill_dir = getattr(args, "spill_dir", None)
    if args.store != "sharded":
        if budget is not None or spill_dir is not None:
            raise SystemExit(
                "repro: --memory-budget/--spill-dir require --store sharded"
            )
        return args.store
    if budget is None and spill_dir is None:
        return args.store
    from .storage import sharded_store_factory

    return sharded_store_factory(budget, spill_dir)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Warded Datalog∃ with piece-wise linear recursion — "
            "a reproduction of 'The Space-Efficient Core of Vadalog' "
            "(PODS 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Shared by every subcommand: the fact-storage backend.
    store_options = argparse.ArgumentParser(add_help=False)
    store_options.add_argument(
        "--store",
        default="instance",
        type=_store_backend,
        metavar="BACKEND",
        help="fact-storage backend for materializing engines "
             f"({', '.join(BACKENDS)}; default: instance)",
    )
    store_options.add_argument(
        "--memory-budget",
        type=_byte_size,
        default=None,
        metavar="BYTES",
        help="resident-byte budget for --store sharded (suffixes k/m/g; "
             "cold shards spill to disk beyond it)",
    )
    store_options.add_argument(
        "--spill-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for --store sharded spill files (default: a "
             "private temporary directory)",
    )

    classify = commands.add_parser(
        "classify",
        parents=[store_options],
        help="print class memberships and analysis of a program",
    )
    classify.add_argument("file", type=Path, help="program file")
    classify.add_argument(
        "--query", help="optional CQ for the node-width bounds"
    )

    code_lines = ["diagnostic codes (E error, W warning, I info):"]
    code_lines.append(
        "  E001 syntax-error              error    the program does "
        "not parse (position of the failure)"
    )
    code_lines.extend(
        f"  {code} {name:26s} {severity:8s} {summary}"
        for code, name, severity, summary in registered_codes()
    )
    lint_cmd = commands.add_parser(
        "lint",
        help="run the static diagnostics engine over program files",
        description=(
            "Run every repro.lint pass over each FILE and report the "
            "findings with stable codes and source positions.  Exits "
            "1 when any file has error-severity findings (or warnings "
            "under --strict), 0 when everything passes."
        ),
        epilog="\n".join(code_lines),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    lint_cmd.add_argument(
        "files", nargs="+", type=Path, metavar="FILE",
        help="program file(s) in the Vadalog-style surface syntax",
    )
    lint_cmd.add_argument(
        "--query", metavar="CQ",
        help="a target query; enables the query-scoped reachability "
             "pass (W205)",
    )
    lint_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text, one line per finding)",
    )
    lint_cmd.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not only errors",
    )
    lint_cmd.add_argument(
        "--select", metavar="CODES",
        help="comma-separated code prefixes to keep (e.g. E,W2); "
             "default: all",
    )
    lint_cmd.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated code prefixes to drop (e.g. I,W104)",
    )
    lint_cmd.add_argument(
        "--out", type=Path, metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )

    answer = commands.add_parser(
        "answer",
        parents=[store_options],
        help="compute certain answers of a query",
    )
    answer.add_argument("file", type=Path, help="program + facts file")
    answer.add_argument(
        "--query", required=True, help='e.g. "q(X,Y) :- t(X,Y)."'
    )
    answer.add_argument(
        "--method",
        default="auto",
        choices=("auto",) + ENGINES,
        help="engine selection (default: dispatch on the program class)",
    )
    answer.add_argument(
        "--rewrite",
        default="auto",
        choices=REWRITES,
        help="demand (magic-set) rewriting of bound queries on full "
             "programs (default: auto — applied exactly when it pays)",
    )
    answer.add_argument(
        "--exec", dest="exec_mode",
        default="auto",
        choices=EXEC_MODES,
        help="datalog exec dimension: compiled columnar batch kernels "
             "vs the per-tuple interpreter (default: auto — kernels "
             "exactly when the store exposes interned id arrays)",
    )
    answer.add_argument(
        "--explain", action="store_true",
        help="print the query plan before the answers",
    )

    query = commands.add_parser(
        "query",
        parents=[store_options],
        help="load a program once, then answer many queries against it",
    )
    query.add_argument("file", type=Path, help="program + facts file")
    query.add_argument(
        "--query", action="append", default=[], metavar="CQ",
        help="a query to answer (repeatable; without any, read queries "
             "interactively from stdin)",
    )
    query.add_argument(
        "--method",
        default="auto",
        choices=("auto",) + ENGINES,
        help="engine selection (default: dispatch on the program class)",
    )
    query.add_argument(
        "--rewrite",
        default="auto",
        choices=REWRITES,
        help="demand (magic-set) rewriting of bound queries on full "
             "programs (default: auto — applied exactly when it pays)",
    )
    query.add_argument(
        "--exec", dest="exec_mode",
        default="auto",
        choices=EXEC_MODES,
        help="datalog exec dimension: compiled columnar batch kernels "
             "vs the per-tuple interpreter (default: auto — kernels "
             "exactly when the store exposes interned id arrays)",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="print each query's plan before its answers",
    )
    query.add_argument(
        "--first", type=int, default=None, metavar="N",
        help="stop each answer stream after N tuples (demonstrates the "
             "pull-based stream: the engine is not run to completion)",
    )

    chase_cmd = commands.add_parser(
        "chase",
        parents=[store_options],
        help="run the restricted chase and print the instance",
    )
    chase_cmd.add_argument("file", type=Path, help="program + facts file")
    chase_cmd.add_argument(
        "--max-atoms", type=int, default=10000,
        help="instance-size budget (default 10000)",
    )
    chase_cmd.add_argument(
        "--memory-report", action="store_true",
        help="print the store's per-component byte accounting",
    )

    stats = commands.add_parser(
        "stats",
        parents=[store_options],
        help="Section 1.2 recursion statistics over the corpus",
    )
    stats.add_argument("--scale", type=int, default=2)
    stats.add_argument("--seed", type=int, default=2019)

    bench = commands.add_parser(
        "bench",
        help="run the scenario-matrix benchmark suite (all five "
             "families × engines × storage backends) and write one "
             "consolidated BENCH_suite.json",
    )
    bench.add_argument(
        "--scale", default="smoke", choices=BENCH_SCALES,
        help="corpus size / engine budget knob (default: smoke)",
    )
    bench.add_argument(
        "--suite", action="append", default=None, choices=BENCH_SUITES,
        metavar="SUITE",
        help="benchmark family to include (repeatable; default: all of "
             f"{', '.join(BENCH_SUITES)})",
    )
    bench.add_argument(
        "--engine", action="append", default=None, choices=ENGINES,
        metavar="ENGINE",
        help="engine to run (repeatable; default: all of "
             f"{', '.join(ENGINES)})",
    )
    bench.add_argument(
        "--store", action="append", default=None, type=_store_backend,
        metavar="BACKEND",
        help="storage backend to run (repeatable; default: all of "
             f"{', '.join(BACKENDS)})",
    )
    bench.add_argument(
        "--queries", type=_positive_int, default=1, metavar="N",
        help="queries per scenario (default 1)",
    )
    bench.add_argument("--seed", type=int, default=2019)
    bench.add_argument(
        "--out", type=Path,
        default=Path("benchmarks/results/BENCH_suite.json"),
        help="where to write the consolidated JSON artifact "
             "(default: benchmarks/results/BENCH_suite.json, relative "
             "to the working directory)",
    )

    update = commands.add_parser(
        "update",
        parents=[store_options],
        help="apply EDB fact deltas (+atom / -atom lines) through the "
             "incremental-maintenance layer and print what it did",
    )
    update.add_argument("file", type=Path, help="program + facts file")
    update.add_argument(
        "--changes", default="-", metavar="PATH",
        help="delta file: one '+atom.' (insert) or '-atom.' (retract) "
             "per line, '#' comments, a line of just '--' separating "
             "batches; '-' reads stdin (default)",
    )
    update.add_argument(
        "--query", action="append", default=[], metavar="CQ",
        help="query to answer before and after the deltas (repeatable); "
             "warms the fixpoint cache so maintenance has something to "
             "upgrade",
    )
    update.add_argument(
        "--method",
        default="auto",
        choices=("auto",) + ENGINES,
        help="engine selection for --query (default: auto)",
    )
    update.add_argument(
        "--rewrite",
        default="none",
        choices=REWRITES,
        help="demand rewriting for the --query runs (default: none — "
             "a magic fixpoint is demand-specific and cannot be "
             "maintained, which would defeat this subcommand's "
             "upgrade-in-place purpose)",
    )
    update.add_argument(
        "--exec", dest="exec_mode",
        default="auto",
        choices=EXEC_MODES,
        help="datalog exec dimension for the --query runs "
             "(default: auto)",
    )

    rewrite = commands.add_parser(
        "rewrite",
        parents=[store_options],
        help="rewrite (Σ, q) into an equivalent (PWL) Datalog program "
             "(Theorem 6.3 / Lemma 6.4)",
    )
    rewrite.add_argument("file", type=Path, help="program file")
    rewrite.add_argument(
        "--query", required=True, help='e.g. "q(X,Y) :- t(X,Y)."'
    )
    rewrite.add_argument(
        "--width", type=int, default=None,
        help="node-width bound (default: the theorem's polynomial)",
    )
    rewrite.add_argument(
        "--max-states", type=int, default=20000,
        help="canonical-CQ budget before truncating (default 20000)",
    )

    serve = commands.add_parser(
        "serve",
        parents=[store_options],
        help="run the concurrent reasoning server on a program "
             "(newline-delimited JSON over TCP; see repro.server)",
    )
    serve.add_argument("file", type=Path, help="program + facts file")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=7777,
        help="TCP port; 0 binds an ephemeral port (default 7777)",
    )
    serve.add_argument(
        "--port-file", type=Path, default=None, metavar="PATH",
        help="write the bound port here once listening (for --port 0 "
             "callers that need to discover the address)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="grace period for open connections on shutdown (default 5)",
    )
    serve.add_argument(
        "--flatten-depth", type=_positive_int, default=8, metavar="N",
        help="collapse the snapshot overlay chain every N versions "
             "(default 8)",
    )
    serve.add_argument(
        "--state-dir", type=Path, default=None, metavar="DIR",
        help="persist EDB + promoted fixpoints here; a restart over the "
             "same program warm-starts from the checkpoint instead of "
             "resaturating",
    )

    client = commands.add_parser(
        "client",
        help="talk to a running reasoning server",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7777)
    client_ops = client.add_subparsers(dest="client_command", required=True)

    client_query = client_ops.add_parser(
        "query", help="answer one or more queries against the server"
    )
    client_query.add_argument(
        "query", nargs="+", help='CQ text, e.g. "q(X,Y) :- t(X,Y)."'
    )
    client_query.add_argument(
        "--method", default="auto", choices=("auto",) + ENGINES
    )
    client_query.add_argument("--rewrite", default="auto", choices=REWRITES)
    client_query.add_argument(
        "--exec", dest="exec_mode", default="auto", choices=EXEC_MODES
    )
    client_query.add_argument(
        "--first", type=_positive_int, default=None, metavar="N",
        help="stop each answer stream after N tuples",
    )

    client_update = client_ops.add_parser(
        "update", help="apply an EDB change batch on the server"
    )
    client_update.add_argument(
        "--changes", default="-", metavar="PATH",
        help="delta file of '+atom.' / '-atom.' lines; '-' reads stdin "
             "(default)",
    )

    client_lint = client_ops.add_parser(
        "lint", help="lint a program text through the server's lint op"
    )
    client_lint.add_argument(
        "file", type=Path, help="program file to send for linting"
    )
    client_lint.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not only errors",
    )
    client_lint.add_argument(
        "--select", metavar="CODES",
        help="comma-separated code prefixes to keep",
    )
    client_lint.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated code prefixes to drop",
    )

    client_ops.add_parser(
        "stats", help="print the server's /stats payload as JSON"
    )
    client_ops.add_parser("ping", help="liveness check; prints the version")
    client_ops.add_parser("shutdown", help="ask the server to stop")

    trace = commands.add_parser(
        "trace",
        help="generate, replay, or summarize workload traces "
             "(repro.workloads)",
    )
    trace_ops = trace.add_subparsers(dest="trace_command", required=True)

    trace_generate = trace_ops.add_parser(
        "generate",
        help="generate a seeded, zipf-skewed NDJSON op trace over a "
             "scenario family",
    )
    trace_generate.add_argument(
        "--ops", type=_positive_int, default=500, metavar="N",
        help="trace length in operations (default 500)",
    )
    trace_generate.add_argument(
        "--mix", default="read-heavy", choices=TRACE_MIXES,
        help="op mix: read-heavy 90/5/5, churn 25/50/25, lookup-heavy "
             "25/5/70 (query/update/point_lookup; default: read-heavy)",
    )
    trace_generate.add_argument(
        "--family", default="churn", choices=TRACE_FAMILIES,
        help="scenario family the trace runs over (default: churn)",
    )
    trace_generate.add_argument(
        "--skew", type=float, default=1.1, metavar="S",
        help="zipfian skew exponent; 0 is uniform (default 1.1)",
    )
    trace_generate.add_argument("--seed", type=int, default=2019)
    trace_generate.add_argument(
        "--rate", type=float, default=200.0, metavar="OPS_PER_SEC",
        help="recorded arrival schedule: op i at i/rate seconds "
             "(default 200; only open-loop replay reads it)",
    )
    trace_generate.add_argument(
        "--vertices", type=_positive_int, default=64, metavar="N",
        help="scenario key-space size (default 64)",
    )
    trace_generate.add_argument(
        "--edges", type=_positive_int, default=128, metavar="N",
        help="scenario base edge count (default 128)",
    )
    trace_generate.add_argument(
        "--clusters", type=_positive_int, default=8, metavar="N",
        help="scenario cluster count (default 8)",
    )
    trace_generate.add_argument(
        "--out", default="-", metavar="PATH",
        help="trace file to write; '-' prints NDJSON to stdout "
             "(default)",
    )

    trace_replay = trace_ops.add_parser(
        "replay",
        parents=[store_options],
        help="replay a trace file and report latency percentiles, "
             "throughput, and answer-verification results",
    )
    trace_replay.add_argument("file", type=Path, help="trace file (NDJSON)")
    trace_replay.add_argument(
        "--target", default="service",
        choices=("session", "service", "server"),
        help="what to drive: an in-process Session (lock-serialized "
             "baseline), an in-process snapshot-isolated "
             "ReasoningService, or a live server over sockets "
             "(default: service)",
    )
    trace_replay.add_argument(
        "--host", default="127.0.0.1",
        help="server address for --target server",
    )
    trace_replay.add_argument(
        "--port", type=int, default=7777,
        help="server port for --target server (default 7777)",
    )
    trace_replay.add_argument(
        "--workers", type=_positive_int, default=4, metavar="N",
        help="concurrent replay workers (default 4)",
    )
    trace_replay.add_argument(
        "--rate", type=_replay_rate, default=None, metavar="OPS_PER_SEC",
        help="open-loop pacing: a target ops/sec, or 'trace' to honour "
             "each op's recorded schedule; omit for closed-loop "
             "(as-fast-as-possible)",
    )
    trace_replay.add_argument(
        "--no-verify", action="store_true",
        help="skip ground-truth answer verification (pure load run)",
    )
    trace_replay.add_argument(
        "--method", default="auto", choices=("auto",) + ENGINES,
        help="engine selection for replayed queries (default: auto)",
    )
    trace_replay.add_argument(
        "--rewrite", default="auto", choices=REWRITES,
        help="demand rewriting for replayed queries (default: auto)",
    )
    trace_replay.add_argument(
        "--exec", dest="exec_mode", default="auto", choices=EXEC_MODES,
        help="datalog exec dimension for replayed queries (default: auto)",
    )
    trace_replay.add_argument(
        "--json", action="store_true",
        help="print the full replay result as JSON instead of the "
             "human summary",
    )

    trace_summarize = trace_ops.add_parser(
        "summarize",
        help="print a trace file's op mix, schedule, and key skew",
    )
    trace_summarize.add_argument(
        "file", type=Path, help="trace file (NDJSON)"
    )

    return parser


def _load_session(args) -> Session:
    session = Session(store=_resolve_store(args))
    try:
        session.load(Path(args.file))
    except OSError as error:
        raise SystemExit(f"repro: cannot read {args.file}: {error}")
    return session


def _load(path: Path):
    try:
        text = path.read_text()
    except OSError as error:
        raise SystemExit(f"repro: cannot read {path}: {error}")
    return parse_program(text, name=path.stem)


def _cmd_classify(args, out) -> int:
    session = _load_session(args)
    compiled = session.programs[0]
    analysis = compiled.analysis
    program = compiled.program
    print(f"program: {program.name or args.file.stem}", file=out)
    print(f"  TGDs: {len(program)}, facts: {len(session.edb)}", file=out)
    print(f"  warded:               {analysis.warded}", file=out)
    print(f"  piece-wise linear:    {analysis.piecewise_linear}", file=out)
    print(f"  intensionally linear: {is_intensionally_linear(program)}",
          file=out)
    print(f"  linear Datalog:       {is_linear_datalog(program)}", file=out)
    print(f"  full (Datalog):       {analysis.full}", file=out)
    print(f"  max predicate level:  {analysis.max_level}", file=out)
    for predicate in sorted(analysis.levels):
        print(f"    level({predicate}) = {analysis.levels[predicate]}",
              file=out)
    if args.query:
        query = parse_query(args.query)
        normalized = analysis.normalized
        print(
            "  f_WARD∩PWL(q, Σ) = "
            f"{node_width_bound_pwl(query, normalized)}",
            file=out,
        )
        print(
            "  f_WARD(q, Σ)     = "
            f"{node_width_bound_ward(query, normalized)}",
            file=out,
        )
    return 0


def _split_codes(value: Optional[str]) -> Optional[list]:
    """``--select``/``--ignore`` values: comma-separated code prefixes."""
    if not value:
        return None
    return [code.strip() for code in value.split(",") if code.strip()]


def _cmd_lint(args, out) -> int:
    import json

    from .lint import lint_source

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    reports = []
    failed = False
    for path in args.files:
        try:
            text = path.read_text()
        except OSError as error:
            raise SystemExit(f"repro: cannot read {path}: {error}")
        report = lint_source(
            text,
            name=path.stem,
            query=args.query,
            select=select,
            ignore=ignore,
        )
        reports.append((path, report))
        failed = failed or report.fails(args.strict)
    payload = {
        "strict": args.strict,
        "failed": failed,
        "files": [
            {"path": str(path), **report.as_payload()}
            for path, report in reports
        ],
    }
    if args.out is not None:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2), file=out)
    else:
        for path, report in reports:
            for line in report.render(str(path)):
                print(line, file=out)
            print(f"{path}: {report.summary()}", file=out)
    return 1 if failed else 0


def _answer_one(session, query_text, args, out) -> None:
    stream = session.query(
        query_text,
        method=args.method,
        rewrite=getattr(args, "rewrite", "auto"),
        exec_mode=getattr(args, "exec_mode", "auto"),
    )
    if getattr(args, "explain", False):
        print(stream.explain(), file=out)
    limit = getattr(args, "first", None)
    if limit is not None:
        rows = stream.first(limit)
        for row in rows:
            print("(" + ", ".join(str(c) for c in row) + ")", file=out)
        print(
            f"-- first {len(rows)} answer(s), stream "
            f"{'exhausted' if stream.exhausted else 'not exhausted'}",
            file=out,
        )
        return
    count = 0
    for row in stream:
        count += 1
        print("(" + ", ".join(str(c) for c in row) + ")", file=out)
    print(f"-- {count} certain answer(s)", file=out)


def _cmd_answer(args, out) -> int:
    session = _load_session(args)
    stream = session.query(
        args.query, method=args.method, rewrite=args.rewrite,
        exec_mode=args.exec_mode,
    )
    if args.explain:
        print(stream.explain(), file=out)
    # Canonical rendering (unlike `query`, which prints in stream
    # order): the full set, sorted — the historical `answer` contract.
    rows = stream.to_sorted()
    for row in rows:
        print("(" + ", ".join(str(c) for c in row) + ")", file=out)
    print(f"-- {len(rows)} certain answer(s)", file=out)
    return 0


def _cmd_query(args, out, stdin) -> int:
    """Compile once, answer many — the session as a subcommand."""
    session = _load_session(args)
    compiled = session.programs[0]
    if args.query:
        for index, query_text in enumerate(args.query):
            if index:
                print("", file=out)
            print(f"?- {query_text.strip()}", file=out)
            _answer_one(session, query_text, args, out)
        return 0
    # Interactive: one query per line until EOF / "quit".
    stdin = stdin if stdin is not None else sys.stdin
    interactive = getattr(stdin, "isatty", lambda: False)()
    print(
        f"loaded {compiled.name}: {compiled.rules} rule(s), "
        f"{len(session.edb)} fact(s), class "
        f"{compiled.analysis.program_class}; one query per line "
        '(e.g. "q(X,Y) :- t(X,Y)."), "quit" to exit',
        file=out,
    )
    while True:
        if interactive:
            print("?- ", file=out, end="", flush=True)
        try:
            line = stdin.readline()
        except KeyboardInterrupt:
            # ^C at the prompt ends the session like EOF — cleanly,
            # with exit 0, not a traceback (nor the batch-mode 130).
            print("", file=out)
            break
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        if line in ("quit", "exit", r"\q"):
            break
        if not interactive:
            print(f"?- {line}", file=out)
        try:
            _answer_one(session, line, args, out)
        except KeyboardInterrupt:
            # ^C mid-query abandons that stream, keeps the REPL alive.
            print("interrupted", file=out)
        except Exception as error:  # keep the loop alive on bad queries
            print(f"error: {error}", file=out)
    return 0


def _cmd_chase(args, out) -> int:
    program, database = _load(args.file)
    result = chase(
        database, program, variant="restricted", max_atoms=args.max_atoms,
        store=_resolve_store(args),
    )
    for atom in sorted(result.instance, key=str):
        print(atom, file=out)
    status = "saturated" if result.saturated else "truncated"
    print(
        f"-- {len(result.instance)} atoms, {result.fired} firings, {status}",
        file=out,
    )
    if args.memory_report:
        print(f"-- {result.instance.memory_report()}", file=out)
    return 0 if result.saturated else 3


def _cmd_rewrite(args, out) -> int:
    from .expressiveness import pwl_to_datalog, ward_to_datalog

    session = _load_session(args)
    compiled = session.programs[0]
    program = compiled.program
    query = parse_query(args.query)
    rewriter = (
        pwl_to_datalog
        if compiled.analysis.piecewise_linear
        else ward_to_datalog
    )
    rewriting = rewriter(
        query, program, width_bound=args.width, max_states=args.max_states
    )
    for rule in rewriting.program:
        print(rule, file=out)
    print(
        f"-- {rewriting.rules} rules over {rewriting.states} canonical "
        f"CQs, width bound {rewriting.width_bound}, "
        f"{'complete' if rewriting.complete else 'TRUNCATED'}",
        file=out,
    )
    print(f"-- query: {rewriting.query}", file=out)
    return 0 if rewriting.complete else 3


def _cmd_update(args, out, stdin) -> int:
    """EDB deltas through ``Session.apply``: maintain, don't recompute."""
    from .incremental import ChangeSet

    session = _load_session(args)
    for query_text in args.query:
        # Materialize once: the cached fixpoint is what maintenance
        # upgrades (and what the post-update answers are served from) —
        # hence --rewrite defaults to "none" here: a demand-specific
        # magic fixpoint would be dropped by apply(), not upgraded.
        session.query(
            query_text, method=args.method, rewrite=args.rewrite,
            exec_mode=args.exec_mode,
        ).to_set()
    if args.changes == "-":
        stdin = stdin if stdin is not None else sys.stdin
        text = stdin.read()
    else:
        try:
            text = Path(args.changes).read_text()
        except OSError as error:
            raise SystemExit(f"repro: cannot read {args.changes}: {error}")

    batches: list[list[str]] = [[]]
    for line in text.splitlines():
        if line.strip() == "--":
            batches.append([])
        else:
            batches[-1].append(line)
    failed = False
    for index, lines in enumerate(batches):
        try:
            changes = ChangeSet.parse("\n".join(lines))
        except ValueError as error:
            # Batches are sequential: applying batch N+1 after batch N
            # failed would produce a state no corrected input reaches.
            print(
                f"error in batch {index + 1}: {error}; stopping before "
                f"it (applied {index} batch(es))",
                file=out,
            )
            failed = True
            break
        if not changes and len(batches) > 1:
            continue
        report = session.apply(changes)
        if len(batches) > 1:
            print(f"batch {index + 1}:", file=out)
        print(report.describe(), file=out)
    for query_text in args.query:
        print(f"?- {query_text.strip()}", file=out)
        _answer_one(session, query_text, args, out)
    return 3 if failed else 0


def _cmd_bench(args, out) -> int:
    """The scenario-matrix suite: one command, one JSON artifact."""
    from .benchsuite.harness import SUITES, run_matrix

    def progress(cell):
        line = (
            f"{cell.suite}/{cell.scenario}  {cell.engine}×{cell.store}  "
            f"{cell.status}"
        )
        if cell.status == "ok":
            line += (
                f"  {cell.seconds:.3f}s  {cell.answers} answer(s)  "
                f"{cell.resident_bytes / 1024:.0f} KiB resident"
            )
        print(line, file=out)

    # dict.fromkeys: repeatable flags dedupe while keeping order, so
    # `--engine pwl --engine pwl` doesn't run every cell twice.
    report = run_matrix(
        engines=tuple(dict.fromkeys(args.engine)) if args.engine else ENGINES,
        stores=tuple(dict.fromkeys(args.store)) if args.store else BACKENDS,
        scale=args.scale,
        base_seed=args.seed,
        suites=tuple(dict.fromkeys(args.suite)) if args.suite else SUITES,
        queries_per_scenario=args.queries,
        progress=progress,
    )
    path = report.write(args.out)
    ok = len(report.ok_cells)
    print(
        f"-- {len(report.cells)} cells ({ok} ok), "
        f"{report.agreement_groups_checked} (scenario, query) group(s) "
        f"cross-checked, {len(report.disagreements)} disagreement(s)",
        file=out,
    )
    print(f"-- wrote {path}", file=out)
    for record in report.disagreements:
        print(f"DISAGREEMENT: {record}", file=out)
    for cell in report.error_cells:
        print(
            f"ERROR CELL: {cell.suite}/{cell.scenario} "
            f"{cell.engine}×{cell.store}: {cell.detail}",
            file=out,
        )
    if ok == 0:
        # A matrix where every cell was skipped or failed measured
        # nothing — a silent green here would let a typo'd slice pass
        # CI without a single number behind it.
        print(
            "-- no successful cells: the selected suites/engines/stores "
            "measured nothing",
            file=out,
        )
        return 3
    return 0 if not report.disagreements and not report.error_cells else 3


def _cmd_serve(args, out) -> int:
    """Run the reasoning daemon until SIGTERM/SIGINT, then drain."""
    import signal

    from .server import ReasoningServer, ReasoningService

    try:
        service = ReasoningService(
            Path(args.file),
            store=_resolve_store(args),
            flatten_depth=args.flatten_depth,
            state_dir=args.state_dir,
        )
    except OSError as error:
        raise SystemExit(f"repro: cannot read {args.file}: {error}")
    server = ReasoningServer(
        service,
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
    )
    host, port = server.address
    if args.port_file is not None:
        args.port_file.write_text(f"{port}\n")
    warm = ", warm-started" if service.warm_started else ""
    print(
        f"repro: serving {service.program_name} "
        f"({len(service.session.edb)} fact(s), store={args.store}{warm}) "
        f"on {host}:{port}",
        file=out,
        flush=True,
    )

    def request_stop(signum, frame):
        # shutdown() would deadlock from a signal handler running on
        # the serve_forever thread; hand it to a helper thread.
        server.shutdown_async()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except ValueError:
            pass  # not the main thread (in-process tests drive stop())
    try:
        server.serve_forever()
        drained = server.drain()
    finally:
        server.server_close()
        # Final checkpoint so a graceful stop captures fixpoints cached
        # since the last update (a pure-query workload never applies).
        service.checkpoint()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(
        "repro: server stopped"
        + ("" if drained else " (drain timed out; connections cut)"),
        file=out,
    )
    return 0


def _cmd_client(args, out, stdin) -> int:
    """One client operation against a running server."""
    import json

    from .server import ReasoningClient

    try:
        client = ReasoningClient(args.host, args.port)
    except OSError as error:
        print(
            f"repro: error: cannot connect to {args.host}:{args.port}: "
            f"{error}",
            file=sys.stderr,
        )
        return 2
    with client:
        command = args.client_command
        if command == "ping":
            print(f"ok (version {client.ping()})", file=out)
        elif command == "query":
            for index, query_text in enumerate(args.query):
                if index:
                    print("", file=out)
                print(f"?- {query_text.strip()}", file=out)
                result = client.query(
                    query_text,
                    method=args.method,
                    rewrite=args.rewrite,
                    exec_mode=args.exec_mode,
                    first=args.first,
                )
                for row in result.answers:
                    print("(" + ", ".join(row) + ")", file=out)
                print(
                    f"-- {len(result)} answer(s) @ version "
                    f"{result.version}, {result.wall_ms:.2f}ms engine"
                    + (" (truncated)" if result.truncated else ""),
                    file=out,
                )
        elif command == "update":
            if args.changes == "-":
                stdin = stdin if stdin is not None else sys.stdin
                text = stdin.read()
            else:
                try:
                    text = Path(args.changes).read_text()
                except OSError as error:
                    raise SystemExit(
                        f"repro: cannot read {args.changes}: {error}"
                    )
            payload = client.update(text)
            print(
                f"version {payload['version']}: +{payload['added']} "
                f"-{payload['dropped']} fact(s), "
                f"{payload['migrated']} cache(s) migrated, "
                f"{len(payload['fallbacks'])} fallback(s)",
                file=out,
            )
            for label, reason in payload["fallbacks"]:
                print(f"  fallback: {label}: {reason}", file=out)
        elif command == "lint":
            try:
                text = args.file.read_text()
            except OSError as error:
                raise SystemExit(
                    f"repro: cannot read {args.file}: {error}"
                )
            payload = client.lint(
                text,
                select=_split_codes(args.select),
                ignore=_split_codes(args.ignore),
            )
            for finding in payload["diagnostics"]:
                location = (
                    f"{finding['line']}:{finding['column']}"
                    if "line" in finding
                    else "-"
                )
                print(
                    f"{args.file}:{location} {finding['code']} "
                    f"{finding['name']}: {finding['message']}",
                    file=out,
                )
            print(f"{args.file}: {payload['summary']}", file=out)
            if payload["errors"] or (args.strict and payload["warnings"]):
                return 1
        elif command == "stats":
            print(json.dumps(client.stats(), indent=2, default=str), file=out)
        else:  # shutdown
            stopping = client.shutdown()
            print("server stopping" if stopping else "server did not stop",
                  file=out)
    return 0


def _cmd_trace(args, out) -> int:
    """The workload harness: generate / replay / summarize traces."""
    import json

    from .workloads import Trace, generate_trace

    if args.trace_command == "generate":
        trace = generate_trace(
            ops=args.ops,
            mix=args.mix,
            skew=args.skew,
            seed=args.seed,
            rate=args.rate,
            family=args.family,
            vertices=args.vertices,
            edges=args.edges,
            clusters=args.clusters,
        )
        if args.out == "-":
            out.write(trace.dumps())
            return 0
        trace.dump(Path(args.out))
        summary = trace.summary()
        print(
            f"wrote {args.out}: {summary['ops']} op(s) "
            f"({', '.join(f'{k}={v}' for k, v in summary['kinds'].items())}), "
            f"{summary['duration_seconds']:.1f}s schedule, "
            f"{summary['distinct_keys']} distinct key(s)",
            file=out,
        )
        return 0

    # Trace.load wraps unreadable/malformed files in TraceError, which
    # main() renders as the one-line exit-2 diagnostic.
    trace = Trace.load(args.file)

    if args.trace_command == "summarize":
        print(json.dumps(trace.summary(), indent=2, default=str), file=out)
        return 0

    # replay
    from .workloads import (
        ClientTarget,
        ServiceTarget,
        SessionTarget,
        materialize_scenario,
        replay_trace,
    )

    engine_opts = dict(
        method=args.method, rewrite=args.rewrite, exec_mode=args.exec_mode
    )
    if args.target == "server":
        try:
            target = ClientTarget(args.host, args.port, **engine_opts)
        except OSError as error:
            print(
                f"repro: error: cannot connect to {args.host}:{args.port}: "
                f"{error}",
                file=sys.stderr,
            )
            return 2
        scenario = None if args.no_verify else materialize_scenario(trace)
    else:
        scenario = materialize_scenario(trace)
        factory = (
            SessionTarget if args.target == "session" else ServiceTarget
        )
        target = factory.for_scenario(
            scenario, store=_resolve_store(args), **engine_opts
        )
    try:
        result = replay_trace(
            trace,
            target,
            workers=args.workers,
            rate=args.rate,
            verify=not args.no_verify,
            scenario=scenario,
        )
    finally:
        target.close()
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, default=str), file=out)
    else:
        print(result.describe(), file=out)
    return 0 if result.ok else 3


def _cmd_stats(args, out) -> int:
    from .benchsuite import classify_corpus, default_corpus

    stats = classify_corpus(
        default_corpus(base_seed=args.seed, scale=args.scale)
    )
    for bucket, count, fraction in stats.rows():
        print(f"{bucket:38s} {count:4d}  {fraction:6.1%}", file=out)
    print(
        f"{'piece-wise linear total':38s} "
        f"{stats.direct_pwl + stats.linearizable:4d}  "
        f"{stats.pwl_fraction:6.1%}",
        file=out,
    )
    return 0


def _dispatch(args, out, stdin) -> int:
    if args.command == "query":
        return _cmd_query(args, out, stdin)
    if args.command == "update":
        return _cmd_update(args, out, stdin)
    if args.command == "client":
        return _cmd_client(args, out, stdin)
    handlers = {
        "classify": _cmd_classify,
        "lint": _cmd_lint,
        "answer": _cmd_answer,
        "chase": _cmd_chase,
        "stats": _cmd_stats,
        "bench": _cmd_bench,
        "rewrite": _cmd_rewrite,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args, out)


def main(
    argv: Optional[Sequence[str]] = None, out=None, stdin=None
) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, out, stdin)
    except KeyboardInterrupt:
        # ^C mid-command: the conventional 128 + SIGINT, no traceback.
        print("repro: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly (the
        # conventional 128 + SIGPIPE), don't traceback into stderr.
        return 141
    except Exception as error:
        # Engine/parse/server errors are diagnostics, not crashes: one
        # line on stderr, exit 2.  (SystemExit — argparse errors and
        # the "cannot read" paths — propagates untouched.)
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
