"""Datalog engine: semi-naive evaluation, PWL-stratum scheduling, and
stratified negation (the paper's "mild negation")."""

from .negation import (
    NotStratifiableError,
    Rule,
    StratifiedProgram,
    negation_stratification,
    parse_stratified_program,
    stratified_answers,
    stratified_fixpoint,
)
from .seminaive import (
    SemiNaiveResult,
    SemiNaiveRound,
    datalog_answers,
    seminaive,
    seminaive_delta_rounds,
    seminaive_rounds,
    stream_datalog_answers,
)
from .strata import (
    Strata,
    StratifiedResult,
    compute_strata,
    stratified_seminaive,
)

__all__ = [
    "seminaive",
    "seminaive_rounds",
    "seminaive_delta_rounds",
    "SemiNaiveResult",
    "SemiNaiveRound",
    "datalog_answers",
    "stream_datalog_answers",
    "compute_strata",
    "Strata",
    "stratified_seminaive",
    "StratifiedResult",
    "Rule",
    "StratifiedProgram",
    "NotStratifiableError",
    "parse_stratified_program",
    "negation_stratification",
    "stratified_fixpoint",
    "stratified_answers",
]
