"""Semi-naive bottom-up evaluation of Datalog programs.

A Datalog program is a set of *full* single-head TGDs (no existential
variables).  Semi-naive evaluation computes the least fixpoint by only
joining rule bodies against the *delta* (facts new in the previous
round), which avoids rediscovering old derivations — the standard
technique every deductive engine uses.

This engine is the substrate for:

* evaluating the piece-wise linear Datalog programs produced by the
  Lemma 6.4 rewriting (Section 6),
* the Datalog baseline in the benchmarks,
* stratum-by-stratum evaluation with materialization boundaries
  (Section 7(3), :mod:`repro.datalog.strata`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.atoms import Atom
from ..core.homomorphism import homomorphisms
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery, stream_new_answers
from ..core.substitution import Substitution
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD
from ..kernels import KernelEvaluator, kernel_capable
from ..storage import ColumnarStore, DeltaOverlay, FactStore, StoreChoice, make_store

__all__ = [
    "SemiNaiveResult",
    "SemiNaiveRound",
    "EXEC_MODES",
    "seminaive",
    "seminaive_rounds",
    "seminaive_delta_rounds",
    "datalog_answers",
    "stream_datalog_answers",
]

#: Execution modes of the semi-naive core: ``"kernel"`` runs compiled
#: batch kernels over interned id rows (stores exposing
#: ``rows_interned``/``extend_interned``), ``"interpret"`` the classic
#: per-tuple substitution loop, ``"auto"`` kernels whenever the store
#: is capable.  Both modes produce identical rounds, staged facts, and
#: ``considered`` counts — the interpreter is the kernel's oracle.
EXEC_MODES = ("auto", "kernel", "interpret")


def _resolve_exec(exec_mode: str, instance: Optional[FactStore],
                  store_label: str) -> str:
    """The mode actually run for this store, validating forced kernels."""
    if exec_mode not in EXEC_MODES:
        raise ValueError(
            f"unknown exec_mode {exec_mode!r}; choose one of "
            f"{', '.join(EXEC_MODES)}"
        )
    capable = instance is not None and kernel_capable(instance)
    if exec_mode == "kernel" and not capable:
        raise ValueError(
            "exec_mode='kernel' needs a store with an interned "
            "id-array surface (rows_interned/extend_interned); "
            f"{store_label!r} has none"
        )
    if exec_mode == "interpret" or not capable:
        return "interpret"
    return "kernel"


@dataclass
class SemiNaiveResult:
    """The least fixpoint, with evaluation statistics."""

    instance: FactStore
    rounds: int
    derived: int            # facts added beyond the database
    considered: int         # body matches examined (work measure)
    per_round_considered: tuple[int, ...] = ()
    per_round_derived: tuple[int, ...] = ()
    exec_mode: str = "interpret"   # core that ran (kernel/interpret)
    batches: int = 0               # kernel batch operations executed

    def evaluate(self, query: ConjunctiveQuery) -> set[tuple[Constant, ...]]:
        """Evaluate a CQ over the least fixpoint."""
        return query.evaluate(self.instance)


def _check_datalog(program: Program) -> None:
    for tgd in program:
        if not tgd.is_full():
            raise ValueError(
                f"semi-naive evaluation needs full TGDs, but {tgd} has "
                "existential variables"
            )
        if not tgd.is_single_head():
            raise ValueError(
                "semi-naive evaluation needs single-head TGDs; normalize "
                f"first ({tgd} has {len(tgd.head)} head atoms)"
            )


def _delta_matches(
    tgd: TGD,
    instance: FactStore,
    delta: FactStore,
) -> Iterable[Substitution]:
    """Body matches that use at least one delta atom.

    Implemented by pinning each body position to the delta in turn; a
    match is reported only for the first pinned position it uses, so
    each match appears exactly once.
    """
    body = list(tgd.body)
    for pin_index in range(len(body)):
        pinned = body[pin_index]
        others = body[:pin_index] + body[pin_index + 1:]
        for delta_atom in delta.by_predicate(pinned.predicate):
            seed: Dict[Variable, Term] = {}
            compatible = True
            for p_term, d_term in zip(pinned.args, delta_atom.args):
                if isinstance(p_term, Variable):
                    bound = seed.get(p_term)
                    if bound is not None and bound != d_term:
                        compatible = False
                        break
                    seed[p_term] = d_term
                elif p_term != d_term:
                    compatible = False
                    break
            if not compatible or pinned.arity != delta_atom.arity:
                continue
            for hom in homomorphisms(others, instance, seed):
                image = hom.apply_atoms(tgd.body)
                first_delta = None
                for i, atom in enumerate(image):
                    if atom in delta:
                        first_delta = i
                        break
                if first_delta == pin_index:
                    yield hom


@dataclass(frozen=True)
class SemiNaiveRound:
    """One pull-based event of the semi-naive fixpoint.

    Round 0 carries the seeded database; each later round carries the
    facts staged (and already merged) in that round.  ``instance`` is
    the live store *after* the merge, shared across events.
    """

    index: int
    staged: tuple[Atom, ...]
    considered: int
    instance: FactStore
    #: Batch operations this round executed (kernel mode only) and the
    #: mode that produced the event — observability for
    #: :class:`~repro.api.stream.StreamStats`.
    batches: int = 0
    exec_mode: str = "interpret"


def _kernel_loop(
    evaluator: KernelEvaluator,
    max_rounds: Optional[int],
) -> Iterable[SemiNaiveRound]:
    """Wrap the kernel runtime's rounds as :class:`SemiNaiveRound`
    events (post-merge instance view, same as the interpreter loop)."""
    for index, staged, considered, batches in evaluator.rounds(max_rounds):
        yield SemiNaiveRound(
            index=index,
            staged=staged,
            considered=considered,
            instance=evaluator.store,
            batches=batches,
            exec_mode="kernel",
        )


def seminaive_rounds(
    database: Database,
    program: Program,
    max_rounds: Optional[int] = None,
    *,
    store: StoreChoice = "instance",
    exec_mode: str = "auto",
) -> Iterable[SemiNaiveRound]:
    """The semi-naive fixpoint as a lazy generator of round events.

    This is the engine core; :func:`seminaive` drains it eagerly and
    :func:`stream_datalog_answers` taps it to yield query answers as
    each round lands.  ``store`` selects the storage backend (see
    :data:`repro.storage.BACKENDS`).  The ``"delta"`` backend runs on a
    single :class:`~repro.storage.delta.DeltaOverlay` whose writable
    layer *is* the semi-naive delta, promoted at each round boundary;
    the other backends keep the classic two-store structure.  All
    backends perform the identical round structure and derivations.

    ``exec_mode`` picks the execution core (:data:`EXEC_MODES`):
    ``"auto"`` compiles the rules to columnar batch kernels when the
    store exposes interned id arrays (columnar, sharded) and falls back
    to the per-tuple interpreter otherwise (instance, delta overlay);
    both cores produce identical events.
    """
    _check_datalog(program)
    if store == "delta":
        # One overlay plays both roles: its writable layer *is* the
        # round's delta, promoted into the (columnar) base at each
        # round boundary.  The overlay has no id-array surface, so it
        # always interprets.
        _resolve_exec(exec_mode, None, "delta")
        overlay: Optional[DeltaOverlay] = DeltaOverlay(ColumnarStore())
        overlay.add_all(database)
        instance: FactStore = overlay
        delta: FactStore = overlay.delta
        yield SemiNaiveRound(
            index=0, staged=tuple(database), considered=0, instance=instance
        )
        yield from _delta_loop(
            instance, delta, program, overlay=overlay, max_rounds=max_rounds
        )
        return
    instance = make_store(store, database)
    label = store if isinstance(store, str) else type(instance).__name__
    if _resolve_exec(exec_mode, instance, label) == "kernel":
        evaluator = KernelEvaluator(instance, program)
        evaluator.mark_all_delta()
        yield SemiNaiveRound(
            index=0, staged=tuple(database), considered=0,
            instance=instance, exec_mode="kernel",
        )
        yield from _kernel_loop(evaluator, max_rounds)
        return
    delta = instance.fresh()
    delta.add_all(database)
    yield SemiNaiveRound(
        index=0, staged=tuple(database), considered=0, instance=instance
    )
    yield from _delta_loop(
        instance, delta, program, max_rounds=max_rounds
    )


def _delta_loop(
    instance: FactStore,
    delta: FactStore,
    program: Program,
    *,
    overlay: Optional[DeltaOverlay] = None,
    max_rounds: Optional[int] = None,
) -> Iterable[SemiNaiveRound]:
    """The shared semi-naive round loop: join against *delta*, merge,
    repeat to fixpoint.  With *overlay* given, the overlay's writable
    layer is the delta and each round boundary promotes it."""
    rounds = 0
    while len(delta) > 0:
        if max_rounds is not None and rounds >= max_rounds:
            break
        rounds += 1
        round_considered = 0
        staged: List[Atom] = []
        staged_set: set[Atom] = set()
        for tgd in program:
            head = tgd.head[0]
            for hom in _delta_matches(tgd, instance, delta):
                round_considered += 1
                fact = hom.apply_atom(head)
                if not fact.is_ground():
                    raise ValueError(
                        f"rule {tgd} produced non-ground fact {fact}"
                    )
                if fact not in instance and fact not in staged_set:
                    staged_set.add(fact)
                    staged.append(fact)
        # Merge only after the full round: every rule joins against the
        # same snapshot, so rounds/considered are independent of rule
        # and hash iteration order.
        if overlay is not None:
            overlay.promote()
            overlay.add_all(staged)
            delta = overlay.delta
        else:
            instance.add_all(staged)
            delta = delta.fresh()
            delta.add_all(staged)
        yield SemiNaiveRound(
            index=rounds,
            staged=tuple(staged),
            considered=round_considered,
            instance=instance,
        )


def seminaive_delta_rounds(
    instance: FactStore,
    program: Program,
    delta_atoms: Iterable[Atom],
    max_rounds: Optional[int] = None,
    *,
    exec_mode: str = "auto",
) -> Iterable[SemiNaiveRound]:
    """Resume a saturated semi-naive fixpoint after new facts arrive.

    *instance* is a least fixpoint of *program* over some earlier
    database; *delta_atoms* are facts new since it was computed (they
    are inserted if absent).  The rounds are seeded from **just the new
    facts** rather than the whole database — the insertion fast path of
    the incremental-maintenance layer (:mod:`repro.incremental`).
    *instance* is upgraded in place; the union of all staged facts is
    exactly what a from-scratch fixpoint over the extended database
    would have added.

    Round 0 carries the seed delta.  Like :func:`seminaive_rounds`,
    atoms already processed may appear in the seed (the maintainer
    passes every fact added since the last fixpoint): re-deriving from
    them is wasted work but never changes the result.

    ``exec_mode`` follows :func:`seminaive_rounds`: on a kernel-capable
    *instance* the resumption itself runs as batch kernels (the
    incremental-maintenance insertion fast path inherits the speedup).
    """
    _check_datalog(program)
    label = type(instance).__name__
    if _resolve_exec(exec_mode, instance, label) == "kernel":
        evaluator = KernelEvaluator(instance, program)
        # The evaluator seeds store and mirror together: a seed atom
        # the instance already holds is delta without being a new row.
        seed = evaluator.seed_delta(delta_atoms)
        yield SemiNaiveRound(
            index=0, staged=tuple(seed), considered=0,
            instance=instance, exec_mode="kernel",
        )
        yield from _kernel_loop(evaluator, max_rounds)
        return
    seed: List[Atom] = []
    seen: set[Atom] = set()
    for atom in delta_atoms:
        if atom in seen:
            continue
        seen.add(atom)
        instance.add(atom)
        seed.append(atom)
    delta = instance.fresh()
    delta.add_all(seed)
    yield SemiNaiveRound(
        index=0, staged=tuple(seed), considered=0, instance=instance
    )
    yield from _delta_loop(
        instance, delta, program, max_rounds=max_rounds
    )


def seminaive(
    database: Database,
    program: Program,
    max_rounds: Optional[int] = None,
    *,
    store: StoreChoice = "instance",
    exec_mode: str = "auto",
) -> SemiNaiveResult:
    """Compute the least fixpoint of a Datalog program over a database.

    Thin eager driver over :func:`seminaive_rounds`; see there for the
    round structure and the ``store``/``exec_mode`` semantics.
    """
    instance: Optional[FactStore] = None
    rounds = 0
    derived = 0
    considered = 0
    batches = 0
    resolved_exec = "interpret"
    per_round_considered: List[int] = []
    per_round_derived: List[int] = []
    for event in seminaive_rounds(
        database, program, max_rounds, store=store, exec_mode=exec_mode
    ):
        instance = event.instance
        resolved_exec = event.exec_mode
        if event.index == 0:
            continue
        rounds = event.index
        derived += len(event.staged)
        considered += event.considered
        batches += event.batches
        per_round_considered.append(event.considered)
        per_round_derived.append(len(event.staged))
    assert instance is not None
    return SemiNaiveResult(
        instance=instance,
        rounds=rounds,
        derived=derived,
        considered=considered,
        per_round_considered=tuple(per_round_considered),
        per_round_derived=tuple(per_round_derived),
        exec_mode=resolved_exec,
        batches=batches,
    )


def stream_datalog_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    store: StoreChoice = "instance",
    exec_mode: str = "auto",
    on_fixpoint=None,
    stats=None,
) -> Iterable[tuple[Constant, ...]]:
    """Yield ``cert(q, D, Σ)`` tuples as the fixpoint rounds land.

    Answers are produced incrementally: after each semi-naive round that
    staged an atom of a query predicate, the delta-restricted evaluation
    (:meth:`~repro.core.query.ConjunctiveQuery.evaluate_delta`) emits the
    answers whose earliest witness that round completed.  The union over
    all rounds equals the eager :func:`datalog_answers` set.
    ``on_fixpoint``, if given, receives the final :class:`FactStore`
    (callers use it to cache the materialization).  ``stats``, if given,
    receives running ``rounds``, ``derived``, ``exec_mode`` and
    ``kernel_batches`` attributes.
    """
    last_instance: List[Optional[FactStore]] = [None]

    def tap(events):
        derived = 0
        batches = 0
        for event in events:
            last_instance[0] = event.instance
            if event.index > 0:
                derived += len(event.staged)
                batches += event.batches
            if stats is not None:
                stats.rounds = event.index
                stats.derived = derived
                stats.exec_mode = event.exec_mode
                stats.kernel_batches = batches
            yield event

    yield from stream_new_answers(
        query,
        tap(
            seminaive_rounds(
                database, program, store=store, exec_mode=exec_mode
            )
        ),
        lambda event: event.staged,
    )
    if on_fixpoint is not None and last_instance[0] is not None:
        on_fixpoint(last_instance[0])


def datalog_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: Program,
    *,
    store: StoreChoice = "instance",
    exec_mode: str = "auto",
) -> set[tuple[Constant, ...]]:
    """``cert(q, D, Σ)`` for a Datalog program: evaluate over the fixpoint.

    Thin eager wrapper over :func:`stream_datalog_answers`.
    """
    return set(
        stream_datalog_answers(
            query, database, program, store=store, exec_mode=exec_mode
        )
    )
