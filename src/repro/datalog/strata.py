"""PWL-stratum scheduling with materialization boundaries (Section 7(3)).

Piece-wise linearity induces a natural stratification of a program: the
strongly connected components of the predicate graph, ordered
topologically.  The Vadalog system "may decide to insert materialization
nodes at the boundaries of these strata, materializing intermediate
results" — trading memory for the ability to evaluate each stratum to
completion before the next starts (and to reuse the materialized
relations across consumers).

:func:`stratified_seminaive` evaluates a Datalog program stratum by
stratum.  With ``materialize=True`` each stratum's output relations are
frozen into an indexed instance before the next stratum runs (one pass
per stratum, no re-derivation); with ``materialize=False`` the whole
program is handed to plain semi-naive evaluation in one go (the
streaming analogue: every rule stays active until global fixpoint).
Both produce the same least fixpoint; the benchmark E8 measures the
trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.instance import Database, Instance
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from ..core.tgd import TGD
from .seminaive import seminaive

__all__ = ["Strata", "compute_strata", "stratified_seminaive", "StratifiedResult"]


@dataclass(frozen=True)
class Strata:
    """A topologically ordered partition of a program's rules.

    ``layers[i]`` contains the rules whose head predicate belongs to the
    i-th SCC layer of the predicate graph; evaluating layers in order is
    sound because a rule only reads predicates of earlier-or-same layers.
    """

    layers: tuple[tuple[TGD, ...], ...]
    predicate_layer: Dict[str, int]


def compute_strata(program: Program) -> Strata:
    """Group rules by the SCC layer of their head predicate."""
    from ..analysis.predicate_graph import PredicateGraph

    graph = PredicateGraph(program)
    order = graph.condensation_order()
    layer_of: Dict[str, int] = {}
    for index, component in enumerate(order):
        for predicate in component:
            layer_of[predicate] = index

    layered: Dict[int, List[TGD]] = {}
    for tgd in program:
        head_layers = [layer_of[p] for p in tgd.head_predicates()]
        layered.setdefault(max(head_layers), []).append(tgd)

    layers = tuple(
        tuple(layered[i]) for i in sorted(layered)
    )
    return Strata(layers=layers, predicate_layer=layer_of)


@dataclass
class StratifiedResult:
    """Least fixpoint plus per-stratum statistics."""

    instance: Instance
    per_stratum_derived: tuple[int, ...]
    per_stratum_rounds: tuple[int, ...]
    materialized_sizes: tuple[int, ...]

    def evaluate(self, query: ConjunctiveQuery) -> set[tuple[Constant, ...]]:
        return query.evaluate(self.instance)


def stratified_seminaive(
    database: Database,
    program: Program,
    materialize: bool = True,
) -> StratifiedResult:
    """Evaluate stratum by stratum, optionally materializing boundaries.

    With ``materialize=False`` this delegates to one global semi-naive
    run and reports it as a single stratum — the baseline for the E8
    trade-off measurement.
    """
    if not materialize:
        result = seminaive(database, program)
        return StratifiedResult(
            instance=result.instance,
            per_stratum_derived=(result.derived,),
            per_stratum_rounds=(result.rounds,),
            materialized_sizes=(len(result.instance),),
        )

    strata = compute_strata(program)
    current = Database(database)
    derived: List[int] = []
    rounds: List[int] = []
    sizes: List[int] = []
    for layer in strata.layers:
        layer_program = Program(layer)
        result = seminaive(current, layer_program)
        derived.append(result.derived)
        rounds.append(result.rounds)
        # Materialization boundary: freeze the stratum's output into the
        # database for the next stratum.
        current = Database()
        for atom in result.instance:
            current.add(atom)
        sizes.append(len(current))

    return StratifiedResult(
        instance=current.to_instance(),
        per_stratum_derived=tuple(derived),
        per_stratum_rounds=tuple(rounds),
        materialized_sizes=tuple(sizes),
    )
