"""Stratified negation — the paper's "very mild and easy to handle
negation" (Section 1.1, key property (2)).

Warded Datalog∃ plus a mild negation captures SPARQL under the OWL 2 QL
direct-semantics entailment regime.  The mild negation in question is
*stratified* negation: a rule may negate a predicate only if that
predicate's value is fully settled before the rule's stratum runs —
negation never wraps around a recursive cycle.

The layer is deliberately self-contained (its own :class:`Rule` with
positive and negative body literals, its own parser on top of the
shared atom syntax) so the existential core of the package stays the
paper's pure TGD formalism:

* :func:`parse_stratified_program` — the surface syntax extends the
  rule bodies with ``not p(X, Y)`` literals;
* :func:`negation_stratification` — predicate dependency graph with
  positive/negative edges; a program is stratifiable iff no negative
  edge lies inside a strongly connected component;
* :func:`stratified_fixpoint` — evaluates stratum by stratum;
  within a stratum the negated predicates are complete (they belong to
  strictly lower strata), so each negative literal is a static filter.

Rules must be *safe*: every variable of the head and of every negative
literal occurs in some positive body atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.atoms import Atom
from ..core.homomorphism import homomorphisms
from ..core.instance import Database, Instance
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..lang.parser import parse_atom
from ..reachability.digraph import DiGraph

__all__ = [
    "Rule",
    "StratifiedProgram",
    "NotStratifiableError",
    "parse_stratified_program",
    "negation_stratification",
    "stratified_fixpoint",
    "stratified_answers",
]


class NotStratifiableError(ValueError):
    """Raised when negation occurs inside a recursive cycle."""


@dataclass(frozen=True)
class Rule:
    """One rule: head ← positive body, negated literals."""

    head: Atom
    positive: Tuple[Atom, ...]
    negative: Tuple[Atom, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.positive:
            raise ValueError(
                f"rule for {self.head.predicate} needs at least one "
                "positive body atom"
            )
        bound: Set[Variable] = set()
        for atom in self.positive:
            bound |= atom.variables()
        unsafe = (self.head.variables() - bound) | {
            var
            for atom in self.negative
            for var in atom.variables() - bound
        }
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise ValueError(
                f"unsafe rule for {self.head.predicate}: variables "
                f"{{{names}}} do not occur in a positive body atom"
            )

    def predicates(self) -> Set[str]:
        return (
            {self.head.predicate}
            | {a.predicate for a in self.positive}
            | {a.predicate for a in self.negative}
        )

    def __str__(self) -> str:
        body = [str(a) for a in self.positive]
        body += [f"not {a}" for a in self.negative]
        return f"{self.head} :- {', '.join(body)}."


@dataclass
class StratifiedProgram:
    """A finite set of rules with (possibly) negated body literals."""

    rules: Tuple[Rule, ...]
    name: str = ""

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def head_predicates(self) -> Set[str]:
        return {rule.head.predicate for rule in self.rules}

    def predicates(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.predicates()
        return result

    def has_negation(self) -> bool:
        return any(rule.negative for rule in self.rules)


# -- parsing -------------------------------------------------------------------


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        index = line.find("%")
        lines.append(line if index < 0 else line[:index])
    return "\n".join(lines)


def _split_statements(text: str) -> List[str]:
    statements = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "." and depth == 0:
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(char)
    leftover = "".join(current).strip()
    if leftover:
        raise ValueError(f"statement without terminating period: {leftover!r}")
    return statements


def _split_literals(body: str) -> List[str]:
    literals = []
    depth = 0
    current: List[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            literals.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    last = "".join(current).strip()
    if last:
        literals.append(last)
    return literals


def parse_stratified_program(
    text: str, name: str = ""
) -> Tuple[StratifiedProgram, Database]:
    """Parse rules with optional ``not`` literals, plus ground facts.

    The syntax is the package's usual surface syntax with body literals
    optionally prefixed by ``not``::

        reach(X, Y)      :- edge(X, Y).
        reach(X, Z)      :- edge(X, Y), reach(Y, Z).
        separated(X, Y)  :- node(X), node(Y), not reach(X, Y).
    """
    rules: List[Rule] = []
    database = Database()
    for statement in _split_statements(_strip_comments(text)):
        if ":-" not in statement:
            atom = parse_atom(statement)
            if not atom.is_fact():
                raise ValueError(f"fact contains variables: {statement!r}")
            database.add(atom)
            continue
        head_text, body_text = statement.split(":-", 1)
        head = parse_atom(head_text.strip())
        positive: List[Atom] = []
        negative: List[Atom] = []
        for literal in _split_literals(body_text):
            if literal.startswith("not ") or literal.startswith("not("):
                negative.append(parse_atom(literal[3:].strip()))
            else:
                positive.append(parse_atom(literal))
        rules.append(Rule(head, tuple(positive), tuple(negative)))
    return StratifiedProgram(tuple(rules), name=name), database


# -- stratification --------------------------------------------------------------


def negation_stratification(
    program: StratifiedProgram,
) -> List[Tuple[Rule, ...]]:
    """Partition the rules into strata; raise if not stratifiable.

    Predicates are grouped by the SCCs of the full dependency graph; a
    negative edge inside one SCC means negation through recursion —
    the classic non-stratifiable pattern (win/move) — and is rejected.
    Rule strata follow the topological order of the condensation.
    """
    graph = DiGraph()
    negative_edges: Set[Tuple[str, str]] = set()
    for predicate in program.predicates():
        graph.add_node(predicate)
    for rule in program:
        for atom in rule.positive:
            graph.add_edge(atom.predicate, rule.head.predicate)
        for atom in rule.negative:
            graph.add_edge(atom.predicate, rule.head.predicate)
            negative_edges.add((atom.predicate, rule.head.predicate))

    _, component_of = graph.condensation()
    for source, target in negative_edges:
        if component_of[source] == component_of[target]:
            raise NotStratifiableError(
                f"negation through recursion: {target!r} negatively "
                f"depends on {source!r} inside one recursive component"
            )

    # A rule evaluates in the stratum of its head's component.
    layered: Dict[int, List[Rule]] = {}
    for rule in program:
        layered.setdefault(component_of[rule.head.predicate], []).append(rule)
    return [tuple(layered[key]) for key in sorted(layered)]


# -- evaluation --------------------------------------------------------------------


@dataclass
class StratifiedFixpoint:
    """The perfect model of a stratified program over a database."""

    instance: Instance
    strata: int
    derived: int
    rounds: int

    def evaluate(self, query: ConjunctiveQuery) -> set[tuple[Constant, ...]]:
        return query.evaluate(self.instance)


def _rule_matches(rule: Rule, instance: Instance):
    """All substitutions matching the positive body and failing every
    negated literal."""
    for hom in homomorphisms(list(rule.positive), instance):
        blocked = False
        for negated in rule.negative:
            image = hom.apply_atom(negated)
            if next(iter(instance.matching(image)), None) is not None:
                blocked = True
                break
        if not blocked:
            yield hom


def stratified_fixpoint(
    database: Database, program: StratifiedProgram
) -> StratifiedFixpoint:
    """Evaluate stratum by stratum to the perfect model.

    Within a stratum the rules iterate naively to fixpoint (the strata
    are small by construction; the package's semi-naive engine handles
    the negation-free fast path), while every negated literal refers
    only to strata that are already complete.
    """
    strata = negation_stratification(program)
    instance = database.to_instance()
    derived = 0
    rounds = 0
    for layer in strata:
        changed = True
        while changed:
            rounds += 1
            changed = False
            fresh: List[Atom] = []
            for rule in layer:
                for hom in _rule_matches(rule, instance):
                    fact = hom.apply_atom(rule.head)
                    if not fact.is_ground():
                        raise ValueError(
                            f"rule {rule} produced non-ground fact {fact}"
                        )
                    if fact not in instance:
                        fresh.append(fact)
            for fact in fresh:
                if fact not in instance:
                    instance.add(fact)
                    derived += 1
                    changed = True
    return StratifiedFixpoint(
        instance=instance,
        strata=len(strata),
        derived=derived,
        rounds=rounds,
    )


def stratified_answers(
    query: ConjunctiveQuery,
    database: Database,
    program: StratifiedProgram,
) -> set[tuple[Constant, ...]]:
    """Evaluate a CQ over the perfect model of a stratified program."""
    return stratified_fixpoint(database, program).evaluate(query)
