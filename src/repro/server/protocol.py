"""The wire protocol: newline-delimited JSON request/response frames.

One request per line, one response per line, UTF-8.  Kept deliberately
minimal — six operations, every response self-describing — so a client
in any language is a socket, a JSON codec, and a line reader:

``{"op": "query", "query": "q(X) :- path(a, X)."}``
    → ``{"ok": true, "answers": [["b"], ...], "version": 3, ...}``
``{"op": "update", "changes": "+edge(d, e).\\n-edge(a, b)."}``
    → ``{"ok": true, "version": 4, "added": 1, "dropped": 1, ...}``
``{"op": "lint", "program": "t(X) :- e(X, Y).\\n..."}``
    → ``{"ok": true, "diagnostics": [...], "summary": "...", ...}``
    (omit ``"program"`` to lint the server's loaded program)
``{"op": "stats"}`` / ``{"op": "ping"}`` / ``{"op": "shutdown"}``

Every request may carry an ``"id"``; the response echoes it, so a
pipelining client can match responses to requests.  Failures are
responses, not disconnects: ``{"ok": false, "error": <message>,
"kind": <exception class>}`` — the connection survives a bad query.
"""

from __future__ import annotations

import json
from typing import Optional

from .service import ReasoningService

__all__ = [
    "OPS",
    "ProtocolError",
    "decode_request",
    "encode_response",
    "error_response",
    "handle_request",
]

OPS = ("query", "update", "lint", "stats", "ping", "shutdown")

#: Engine kwargs a query request may carry, mirroring the CLI's knobs.
QUERY_OPTIONS = (
    "method",
    "rewrite",
    "exec_mode",
    "first",
    "variant",
    "max_atoms",
    "max_steps",
    "max_events",
    "max_rounds",
    "strict",
    "probe_depth",
    "probe_atoms",
)


class ProtocolError(ValueError):
    """A malformed frame: not JSON, not an object, or not a known op."""


def decode_request(line: str) -> dict:
    """Parse one request frame, validating shape and operation."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not valid JSON: {error}") from None
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    return request


def encode_response(response: dict) -> str:
    """Render one response frame (compact, single line)."""
    return json.dumps(response, separators=(",", ":"), default=str)


def error_response(error: BaseException, request_id=None) -> dict:
    response = {
        "ok": False,
        "error": str(error),
        "kind": type(error).__name__,
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def handle_request(
    service: ReasoningService, request: dict
) -> Optional[dict]:
    """Execute one decoded request against *service*.

    Returns the response dict, or ``None`` for ``shutdown`` (the caller
    owns the lifecycle; it acknowledges and stops the server).  Engine
    errors become error responses here; only protocol-level failures
    (undecodable frames) are the caller's problem.
    """
    op = request["op"]
    request_id = request.get("id")

    def done(payload: dict) -> dict:
        response = {"ok": True, "op": op, **payload}
        if request_id is not None:
            response["id"] = request_id
        return response

    if op == "ping":
        return done({"version": service.current_version})
    if op == "stats":
        return done({"stats": service.stats()})
    if op == "shutdown":
        return None
    try:
        if op == "query":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ProtocolError("query op needs a non-empty 'query'")
            options = {
                key: request[key]
                for key in QUERY_OPTIONS
                if request.get(key) is not None
            }
            result = service.query(text, **options)
            return done(result.as_payload())
        if op == "lint":
            program = request.get("program")
            if program is not None and not isinstance(program, str):
                raise ProtocolError(
                    "lint op takes 'program' as a text block (omit it "
                    "to lint the server's loaded program)"
                )
            return done(
                service.lint(
                    program,
                    select=request.get("select"),
                    ignore=request.get("ignore"),
                )
            )
        # op == "update"
        changes = request.get("changes")
        if isinstance(changes, list):
            changes = "\n".join(changes)
        if not isinstance(changes, str) or not changes.strip():
            raise ProtocolError(
                "update op needs 'changes' (a +atom/-atom text block "
                "or list of lines)"
            )
        result = service.apply(changes)
        return done(result.as_payload())
    except Exception as error:  # noqa: BLE001 — every engine/parse error
        return error_response(error, request_id)
