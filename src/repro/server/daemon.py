"""The socket daemon: a :class:`ReasoningService` behind a TCP listener.

One thread per connection (``ThreadingTCPServer``), all of them sharing
the service — which is exactly the concurrency the snapshot layer is
built for: every query is admitted under the then-current EDB version,
updates from any connection install new versions without disturbing
in-flight readers.

Lifecycle: :meth:`ReasoningServer.serve_forever` blocks until
:meth:`shutdown` (from a signal handler, a ``shutdown`` frame, or
another thread).  Shutdown is *graceful*: the listener stops accepting,
open connections get up to ``drain_timeout`` seconds to finish their
current request, and only then are sockets torn down.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Optional, Tuple

from .protocol import (
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    handle_request,
)
from .service import ReasoningService

__all__ = ["ReasoningServer"]


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: read frames, answer frames, until EOF."""

    def handle(self) -> None:
        server: "ReasoningServer" = self.server  # type: ignore[assignment]
        server._track_connection(self, +1)
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as error:
                    self._send(error_response(error))
                    continue
                response = handle_request(server.service, request)
                if response is None:  # shutdown frame
                    self._send(
                        {"ok": True, "op": "shutdown", "stopping": True}
                    )
                    server.shutdown_async()
                    return
                self._send(response)
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # client went away mid-frame; nothing to clean up
        finally:
            server._track_connection(self, -1)

    def _send(self, response: dict) -> None:
        self.wfile.write(encode_response(response).encode("utf-8") + b"\n")
        self.wfile.flush()


class ReasoningServer(socketserver.ThreadingTCPServer):
    """A long-lived reasoning daemon over one program.

    ``port=0`` binds an ephemeral port (read it back from
    ``server_address``) — the tests and the benchmark run real sockets
    without port coordination.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: ReasoningService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 5.0,
    ):
        self.service = service
        self.drain_timeout = drain_timeout
        self._connections_lock = threading.Lock()
        self._connections = 0
        self._stopping = threading.Event()
        super().__init__((host, port), _ConnectionHandler)

    # -- introspection -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port

    @property
    def active_connections(self) -> int:
        with self._connections_lock:
            return self._connections

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    def _track_connection(self, handler, delta: int) -> None:
        with self._connections_lock:
            self._connections += delta

    # -- lifecycle ---------------------------------------------------------

    def serve_in_thread(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests/benchmarks)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread

    def shutdown_async(self) -> None:
        """Request shutdown without blocking (usable from handler and
        signal contexts, where ``shutdown()`` itself would deadlock)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        threading.Thread(
            target=self.shutdown, name="repro-shutdown", daemon=True
        ).start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for open connections to finish; True if they all did.

        Called after ``serve_forever`` returns: the listener no longer
        accepts, but connection threads may still be answering their
        last request.
        """
        deadline = time.monotonic() + (
            self.drain_timeout if timeout is None else timeout
        )
        while time.monotonic() < deadline:
            if self.active_connections == 0:
                return True
            time.sleep(0.02)
        return self.active_connections == 0

    def close(self) -> None:
        """Stop accepting, drain gracefully, release the socket."""
        self._stopping.set()
        self.shutdown()
        self.drain()
        self.server_close()


def probe(host: str, port: int, timeout: float = 1.0) -> bool:
    """True iff something accepts TCP connections at (host, port)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
