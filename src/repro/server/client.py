"""The client library: a blocking, line-oriented connection to a
:class:`~repro.server.daemon.ReasoningServer`.

>>> with ReasoningClient("127.0.0.1", 7777) as client:
...     client.query("q(X) :- path(a, X).").answers
(('b',), ('c',))

One socket, one request in flight at a time (the protocol supports
pipelining via ``id``; this client keeps to strict request/response).
Thread-safe: a lock serializes frames, so one client may be shared —
though one connection per thread is the better pattern, and what the
concurrency benchmark does.

Two resilience affordances for long-lived callers (the replay driver
holds connections across thousands of ops):

* every operation takes ``timeout=`` to bound *that* round-trip —
  a slow query times out without re-arming the whole connection;
* a request that hits a dead socket (``BrokenPipeError``,
  ``ConnectionResetError``, a clean server-side close) is retried
  exactly once on a fresh connection.  One retry is safe for this
  protocol's idempotent reads and at-most-once-delivered writes: a
  request that *died on send* never reached the server, and one whose
  *response was lost* surfaces as ``ConnectionError`` to the caller on
  the second failure rather than being silently re-applied.  Timeouts
  never trigger reconnection — the request may still be in flight.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Iterable, Optional, Tuple, Union

__all__ = ["RemoteAnswers", "ReasoningClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered ``ok: false``; carries the remote error."""

    def __init__(self, message: str, kind: str = "Exception"):
        super().__init__(message)
        self.kind = kind


class RemoteAnswers:
    """A query response: answer tuples plus the server's stream stats."""

    __slots__ = ("query", "answers", "version", "wall_ms", "truncated", "stats")

    def __init__(self, payload: dict):
        self.query = payload.get("query", "")
        self.answers: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(row) for row in payload.get("answers", ())
        )
        self.version: int = payload.get("version", -1)
        self.wall_ms: float = payload.get("wall_ms", 0.0)
        self.truncated: bool = payload.get("truncated", False)
        self.stats: dict = payload.get("stats", {})

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def to_set(self) -> frozenset:
        return frozenset(self.answers)

    def __repr__(self) -> str:
        return (
            f"RemoteAnswers({len(self.answers)} rows @v{self.version}, "
            f"{self.wall_ms:.2f}ms)"
        )


class ReasoningClient:
    """A connection to a running reasoning server.

    Context-manager friendly; raises :class:`ServerError` when the
    server reports a failure, :class:`ConnectionError` when the socket
    drops mid-exchange.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7777, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.reconnects = 0
        self._lock = threading.Lock()
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._reader = self._sock.makefile("r", encoding="utf-8")

    # -- plumbing ----------------------------------------------------------

    def call(
        self, request: dict, *, timeout: Optional[float] = None
    ) -> dict:
        """One request/response round-trip; the raw response dict.

        ``timeout`` bounds this round-trip only (seconds; ``None``
        keeps the connection default).  A dead socket is retried once
        on a fresh connection; a timeout is not (the request may still
        be executing server-side), surfacing as ``TimeoutError``.
        """
        frame = (json.dumps(request, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )
        with self._lock:
            for attempt in (0, 1):
                try:
                    if timeout is not None:
                        self._sock.settimeout(timeout)
                    try:
                        self._sock.sendall(frame)
                        line = self._reader.readline()
                    finally:
                        if timeout is not None:
                            self._sock.settimeout(self.timeout)
                    if line:
                        break
                    raise ConnectionError(
                        f"server at {self.host}:{self.port} closed the "
                        "connection"
                    )
                except socket.timeout as error:
                    # socket.timeout is an OSError, *not* a
                    # ConnectionError: never reconnect-and-resend here.
                    raise TimeoutError(
                        f"no response from {self.host}:{self.port} within "
                        f"{timeout if timeout is not None else self.timeout}s"
                    ) from error
                except ConnectionError:
                    if attempt:
                        raise
                    try:
                        self.close()
                    except OSError:
                        pass
                    self._connect()
                    self.reconnects += 1
        response = json.loads(line)
        if not response.get("ok", False):
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("kind", "Exception"),
            )
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReasoningClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def ping(self, *, timeout: Optional[float] = None) -> int:
        """Round-trip liveness check; the current EDB version."""
        return self.call({"op": "ping"}, timeout=timeout)["version"]

    def query(
        self,
        query: str,
        *,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        first: Optional[int] = None,
        timeout: Optional[float] = None,
        **engine_kwargs,
    ) -> RemoteAnswers:
        request = {"op": "query", "query": query}
        if method != "auto":
            request["method"] = method
        if rewrite != "auto":
            request["rewrite"] = rewrite
        if exec_mode != "auto":
            request["exec_mode"] = exec_mode
        if first is not None:
            request["first"] = first
        request.update(engine_kwargs)
        return RemoteAnswers(self.call(request, timeout=timeout))

    def update(
        self,
        changes: Union[str, Iterable[str]],
        *,
        timeout: Optional[float] = None,
    ) -> dict:
        """Apply a change batch (``+atom`` / ``-atom`` lines); the
        server's :class:`~repro.server.service.UpdateResult` payload."""
        if not isinstance(changes, str):
            changes = "\n".join(changes)
        return self.call(
            {"op": "update", "changes": changes}, timeout=timeout
        )

    def lint(
        self,
        program: Optional[str] = None,
        *,
        select=None,
        ignore=None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Lint *program* text on the server (or, when ``None``, the
        server's loaded program); the JSON diagnostics payload."""
        request: dict = {"op": "lint"}
        if program is not None:
            request["program"] = program
        if select:
            request["select"] = list(select)
        if ignore:
            request["ignore"] = list(ignore)
        return self.call(request, timeout=timeout)

    def stats(self, *, timeout: Optional[float] = None) -> dict:
        return self.call({"op": "stats"}, timeout=timeout)["stats"]

    def shutdown(self, *, timeout: Optional[float] = None) -> bool:
        """Ask the server to stop (acknowledged before it drains)."""
        return self.call({"op": "shutdown"}, timeout=timeout).get(
            "stopping", False
        )
