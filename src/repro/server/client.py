"""The client library: a blocking, line-oriented connection to a
:class:`~repro.server.daemon.ReasoningServer`.

>>> with ReasoningClient("127.0.0.1", 7777) as client:
...     client.query("q(X) :- path(a, X).").answers
(('b',), ('c',))

One socket, one request in flight at a time (the protocol supports
pipelining via ``id``; this client keeps to strict request/response).
Thread-safe: a lock serializes frames, so one client may be shared —
though one connection per thread is the better pattern, and what the
concurrency benchmark does.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Iterable, Optional, Tuple, Union

__all__ = ["RemoteAnswers", "ReasoningClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered ``ok: false``; carries the remote error."""

    def __init__(self, message: str, kind: str = "Exception"):
        super().__init__(message)
        self.kind = kind


class RemoteAnswers:
    """A query response: answer tuples plus the server's stream stats."""

    __slots__ = ("query", "answers", "version", "wall_ms", "truncated", "stats")

    def __init__(self, payload: dict):
        self.query = payload.get("query", "")
        self.answers: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(row) for row in payload.get("answers", ())
        )
        self.version: int = payload.get("version", -1)
        self.wall_ms: float = payload.get("wall_ms", 0.0)
        self.truncated: bool = payload.get("truncated", False)
        self.stats: dict = payload.get("stats", {})

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def to_set(self) -> frozenset:
        return frozenset(self.answers)

    def __repr__(self) -> str:
        return (
            f"RemoteAnswers({len(self.answers)} rows @v{self.version}, "
            f"{self.wall_ms:.2f}ms)"
        )


class ReasoningClient:
    """A connection to a running reasoning server.

    Context-manager friendly; raises :class:`ServerError` when the
    server reports a failure, :class:`ConnectionError` when the socket
    drops mid-exchange.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7777, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    # -- plumbing ----------------------------------------------------------

    def call(self, request: dict) -> dict:
        """One request/response round-trip; the raw response dict."""
        frame = json.dumps(request, separators=(",", ":")) + "\n"
        with self._lock:
            self._sock.sendall(frame.encode("utf-8"))
            line = self._reader.readline()
        if not line:
            raise ConnectionError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        response = json.loads(line)
        if not response.get("ok", False):
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("kind", "Exception"),
            )
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReasoningClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def ping(self) -> int:
        """Round-trip liveness check; the current EDB version."""
        return self.call({"op": "ping"})["version"]

    def query(
        self,
        query: str,
        *,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        first: Optional[int] = None,
        **engine_kwargs,
    ) -> RemoteAnswers:
        request = {"op": "query", "query": query}
        if method != "auto":
            request["method"] = method
        if rewrite != "auto":
            request["rewrite"] = rewrite
        if exec_mode != "auto":
            request["exec_mode"] = exec_mode
        if first is not None:
            request["first"] = first
        request.update(engine_kwargs)
        return RemoteAnswers(self.call(request))

    def update(self, changes: Union[str, Iterable[str]]) -> dict:
        """Apply a change batch (``+atom`` / ``-atom`` lines); the
        server's :class:`~repro.server.service.UpdateResult` payload."""
        if not isinstance(changes, str):
            changes = "\n".join(changes)
        return self.call({"op": "update", "changes": changes})

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    def shutdown(self) -> bool:
        """Ask the server to stop (acknowledged before it drains)."""
        return self.call({"op": "shutdown"}).get("stopping", False)
