"""The embeddable serving core: one shared session, many concurrent
readers, snapshot-isolated updates.

:class:`ReasoningService` is the engine-facing half of the server — the
socket daemon (:mod:`repro.server.daemon`) is a thin protocol adapter
over it, and tests/benchmarks drive it in-process with plain threads.

Design:

* one :class:`~repro.api.Session` owns program compilation and
  planning (compile-once, adorned-program cache, plan explanations) —
  made thread-safe in this PR;
* a :class:`~repro.server.snapshot.SnapshotManager` owns the EDB as a
  chain of immutable versions; every query is *admitted* under a lease
  on the then-current version and evaluates against that frozen store
  no matter how many updates land while it runs;
* each version carries its own :class:`VersionCaches` — saturated
  materializations and star abstractions valid for exactly that EDB —
  because a shared in-place cache (the session's own) would be upgraded
  under a running reader's feet.  On ``apply``, maintainable fixpoints
  are *migrated* to the new version: copy, then run the PR-4
  :class:`~repro.incremental.FixpointMaintainer` over just the change
  batch, so the new version starts warm without recomputing and the old
  version's copy stays exact for its in-flight readers.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..api.execution import execute_plan
from ..api.planner import QueryPlan
from ..api.session import Session, fixpoint_cache_key, fixpoint_cacheable
from ..api.stream import AnswerStream
from ..incremental import ChangeSet, FixpointMaintainer, unmaintainable_reason
from ..storage import FactStore, make_store
from ..storage.sharded import (
    FixpointRecord,
    SavedState,
    StateDirectory,
    program_fingerprint,
)
from .snapshot import SnapshotManager, SnapshotVersion, _store_label

__all__ = ["QueryResult", "ReasoningService", "UpdateResult", "VersionCaches"]


class _CacheEntry:
    """One per-version saturated materialization plus what migration
    needs to carry it across versions."""

    __slots__ = ("store", "compiled", "maintainable", "rewrite", "label")

    def __init__(self, store, compiled, maintainable, rewrite, label):
        self.store = store
        self.compiled = compiled
        self.maintainable = maintainable
        self.rewrite = rewrite
        self.label = label


class VersionCaches:
    """Cross-query caches scoped to one immutable snapshot version.

    Duck-typed as the ``session=`` collaborator of
    :func:`repro.api.execution.execute_plan`: it answers
    ``get_fixpoint`` / ``set_fixpoint`` / ``abstraction_for``, but keyed
    to one EDB version instead of a mutable session — the load-bearing
    difference for snapshot isolation.
    """

    #: Cap on demand-specific (magic) entries per version, mirroring
    #: the session's bound.
    MAGIC_LIMIT = 32

    def __init__(self, version: SnapshotVersion):
        self._version = version
        self._lock = threading.Lock()
        self._fixpoints: Dict[tuple, _CacheEntry] = {}
        self._abstractions: Dict[int, object] = {}
        self.hits = 0
        self.misses = 0

    def get_fixpoint(self, plan: QueryPlan) -> Optional[FactStore]:
        if not fixpoint_cacheable(plan):
            return None
        with self._lock:
            entry = self._fixpoints.get(fixpoint_cache_key(plan))
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry.store

    def set_fixpoint(self, plan: QueryPlan, instance: FactStore) -> None:
        if not fixpoint_cacheable(plan):
            return
        tag = "×magic" if plan.rewrite == "magic" else ""
        label = (
            f"{plan.method}×{plan.store_name}{tag} fixpoint "
            f"[{plan.program.name}] @v{self._version.number}"
        )
        entry = _CacheEntry(
            instance, plan.program, plan.maintainable, plan.rewrite, label
        )
        with self._lock:
            self._fixpoints[fixpoint_cache_key(plan)] = entry
            if plan.rewrite == "magic":
                magic_keys = [
                    key
                    for key, cached in self._fixpoints.items()
                    if cached.rewrite == "magic"
                ]
                for key in magic_keys[: -self.MAGIC_LIMIT]:
                    del self._fixpoints[key]

    def abstraction_for(self, compiled):
        """The star abstraction of (this version's EDB, Σ) — computed at
        most once per (version, program), shared by concurrent readers."""
        from ..reasoning.abstraction import star_abstraction

        key = id(compiled)
        with self._lock:
            abstraction = self._abstractions.get(key)
        if abstraction is not None:
            return abstraction
        computed = star_abstraction(
            self._version.store, compiled.analysis.normalized
        )
        with self._lock:
            # First publisher wins; a racing duplicate is equal anyway.
            return self._abstractions.setdefault(key, computed)

    def entries(self) -> List[Tuple[tuple, _CacheEntry]]:
        with self._lock:
            return list(self._fixpoints.items())

    def stats(self) -> dict:
        with self._lock:
            return {
                "fixpoints": len(self._fixpoints),
                "abstractions": len(self._abstractions),
                "hits": self.hits,
                "misses": self.misses,
            }


#: Guards lazy creation of a version's cache object (two queries
#: admitted on a fresh version race to attach it).
_caches_guard = threading.Lock()


def _caches_for(version: SnapshotVersion) -> VersionCaches:
    caches = version.caches
    if caches is None:
        with _caches_guard:
            if version.caches is None:
                version.caches = VersionCaches(version)
            caches = version.caches
    return caches


@dataclass(frozen=True)
class QueryResult:
    """One answered query: the full answer set plus reconciliation data."""

    query: str
    answers: Tuple[Tuple[str, ...], ...]
    version: int
    wall_ms: float
    stats: dict = field(compare=False)
    truncated: bool = False

    def as_payload(self) -> dict:
        return {
            "query": self.query,
            "answers": [list(row) for row in self.answers],
            "count": len(self.answers),
            "version": self.version,
            "wall_ms": self.wall_ms,
            "truncated": self.truncated,
            "stats": self.stats,
        }


@dataclass(frozen=True)
class UpdateResult:
    """One applied change batch, as the protocol reports it."""

    version: int
    added: int
    dropped: int
    maintained: int
    migrated: int
    fallbacks: Tuple[Tuple[str, str], ...]
    wall_ms: float
    effective: bool

    def as_payload(self) -> dict:
        return {
            "version": self.version,
            "added": self.added,
            "dropped": self.dropped,
            "maintained": self.maintained,
            "migrated": self.migrated,
            "fallbacks": [list(pair) for pair in self.fallbacks],
            "wall_ms": self.wall_ms,
            "effective": self.effective,
        }


class ReasoningService:
    """A long-lived, thread-safe reasoning core over one program.

    Queries may run from any number of threads; updates are serialized
    by a writer lock and never block in-flight readers (they read their
    admitted version).  ``store`` names the backend used both for the
    EDB snapshots and the engines' materializations.
    """

    def __init__(
        self,
        source: Union[str, Path, object],
        *,
        store: str = "instance",
        flatten_depth: int = 8,
        name: str = "",
        facts=(),
        state_dir: Union[str, Path, None] = None,
    ):
        self._session = Session(store=store)
        if isinstance(source, (str, Path)):
            # Program text or a file of it; its facts seed the EDB.
            self._compiled = self._session.load(source, name=name)
        else:
            # An in-memory Program/CompiledProgram (the embeddable
            # path — benchmarks hand over generated scenarios).
            self._compiled = self._session.compile(source)
        if facts:
            self._session.add_facts(facts)
        # Warm start: with a state directory holding a checkpoint of
        # the *same program* (content-fingerprinted), restore the
        # checkpointed EDB before version 0 is cut, then re-seed the
        # head's fixpoint caches from the persisted materializations —
        # the first query answers from cache instead of resaturating.
        self._state = (
            StateDirectory(state_dir) if state_dir is not None else None
        )
        self._program_key = program_fingerprint(self._compiled)
        self.warm_started = False
        restored = (
            self._state.load(self._program_key) if self._state else None
        )
        if restored is not None:
            current = set(self._session.edb)
            saved = set(restored.edb)
            self._session.apply(
                inserts=saved - current, retracts=current - saved
            )
        self._snapshots = SnapshotManager(
            self._session.edb, store=store, flatten_depth=flatten_depth
        )
        if restored is not None:
            self._install_restored_fixpoints(restored)
            self.warm_started = True
        self._write_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.started_at = time.time()
        self.queries_total = 0
        self.updates_total = 0
        self.errors_total = 0
        self.active_streams = 0
        self.peak_active_streams = 0
        self.migrated_total = 0
        self.migration_fallbacks_total = 0

    # -- warm-start persistence --------------------------------------------

    def _install_restored_fixpoints(self, restored: SavedState) -> None:
        """Re-seed the head version's caches from a checkpoint.

        The persisted records carry the stable parts of the fixpoint
        cache key (method, store name, engine kwargs); the process-
        local part — ``id(compiled)`` — is reconstructed against this
        process's compiled program.  Records for a different store
        choice are skipped: their keys could never be looked up.
        """
        label = _store_label(self._session.store)
        maintainable = (
            unmaintainable_reason(self._compiled.analysis) is None
        )
        head = self._snapshots._head
        caches = _caches_for(head)
        for record in restored.fixpoints:
            if record.store_name != label:
                continue
            store = make_store(self._session.store, record.atoms)
            key = (
                id(self._compiled),
                record.method,
                record.store_name,
                record.kwargs,
                "none",
                None,
            )
            entry = _CacheEntry(
                store,
                self._compiled,
                maintainable,
                "none",
                f"{record.method}×{record.store_name} fixpoint "
                f"[{self._compiled.name}] @v{head.number} (restored)",
            )
            with caches._lock:
                caches._fixpoints[key] = entry

    def _checkpoint_locked(self) -> Optional[Path]:
        """Persist head EDB + its cacheable fixpoints (write lock held)."""
        if self._state is None:
            return None
        head = self._snapshots._head
        records = []
        if head.caches is not None:
            for key, entry in head.caches.entries():
                # Only unrewritten, untokened materializations persist:
                # demand-specific (magic) fixpoints are tied to one
                # query's seed constants, same rule as migration.
                if entry.rewrite != "none" or key[5] is not None:
                    continue
                records.append(
                    FixpointRecord(
                        method=key[1],
                        store_name=key[2],
                        kwargs=key[3],
                        atoms=tuple(entry.store),
                    )
                )
        state = SavedState(
            program_key=self._program_key,
            store_name=_store_label(self._session.store),
            version=head.number,
            edb=tuple(head.store),
            fixpoints=tuple(records),
        )
        return self._state.save(state)

    def checkpoint(self) -> Optional[Path]:
        """Write a warm-start checkpoint now; None without a state dir.

        Called automatically after every effective :meth:`apply` and by
        the daemon on graceful shutdown; embedders (and the budgeted
        benchmark's kill/restart cycle) may call it directly before
        tearing the service down.
        """
        if self._state is None:
            return None
        with self._write_lock:
            return self._checkpoint_locked()

    @property
    def state_directory(self) -> Optional[StateDirectory]:
        return self._state

    # -- introspection -----------------------------------------------------

    @property
    def session(self) -> Session:
        return self._session

    @property
    def snapshots(self) -> SnapshotManager:
        return self._snapshots

    @property
    def program_name(self) -> str:
        return self._compiled.name

    @property
    def current_version(self) -> int:
        return self._snapshots.head_version

    # -- read path ---------------------------------------------------------

    def stream(
        self,
        query: str,
        *,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        **engine_kwargs,
    ) -> AnswerStream:
        """Admit *query* under the current snapshot and return its lazy
        stream.

        The stream evaluates against the admitted version's frozen EDB
        for its whole life — updates applied after admission are
        invisible (snapshot isolation).  The lease is released when the
        stream drains, errors, or is closed; an abandoned stream's
        lease is reclaimed by a GC finalizer.
        """
        lease = self._snapshots.current()
        try:
            plan = self._session.plan(
                query, method=method, rewrite=rewrite,
                exec_mode=exec_mode, **engine_kwargs
            )
            stream = execute_plan(
                plan, lease.store, session=_caches_for(lease.snapshot)
            )
        except BaseException:
            lease.release()
            with self._stats_lock:
                self.errors_total += 1
            raise
        stream.stats.snapshot_version = lease.version
        with self._stats_lock:
            self.queries_total += 1
            self.active_streams += 1
            self.peak_active_streams = max(
                self.peak_active_streams, self.active_streams
            )

        def released() -> None:
            lease.release()
            with self._stats_lock:
                self.active_streams -= 1

        stream.on_release(released)
        # Backstop for abandoned streams: releasing twice is harmless
        # (lease release is idempotent) but leaking a lease would pin
        # the version forever.
        weakref.finalize(stream, lease.release)
        return stream

    def query(
        self,
        query: str,
        *,
        method: str = "auto",
        rewrite: str = "auto",
        exec_mode: str = "auto",
        first: Optional[int] = None,
        **engine_kwargs,
    ) -> QueryResult:
        """Answer *query* eagerly: drain the stream (or its first *n*)
        and release the snapshot lease before returning."""
        stream = self.stream(
            query, method=method, rewrite=rewrite, exec_mode=exec_mode,
            **engine_kwargs
        )
        try:
            if first is not None:
                rows = stream.first(first)
                truncated = not stream.exhausted
            else:
                rows = stream.to_sorted()
                truncated = False
            answers = tuple(
                tuple(str(term) for term in row) for row in rows
            )
            return QueryResult(
                query=query.strip(),
                answers=answers,
                version=stream.stats.snapshot_version,
                wall_ms=stream.stats.wall_ms,
                stats=stream.stats.as_dict(),
                truncated=truncated,
            )
        except BaseException:
            with self._stats_lock:
                self.errors_total += 1
            raise
        finally:
            stream.close()

    def explain(self, query: str, **plan_kwargs) -> str:
        return self._session.explain(query, **plan_kwargs)

    def lint(
        self,
        program: Optional[str] = None,
        *,
        select=None,
        ignore=None,
    ) -> dict:
        """The lint report as a JSON-ready payload (the ``lint`` op).

        With *program* text, lints that text statelessly (a syntax
        error becomes an ``E001`` finding, never an exception).
        Without it, serves the *loaded* program's report — cached on
        the compiled artifact, so repeated calls run no passes.
        """
        from ..lint import lint_source

        if program is None:
            report = self._compiled.diagnostics.filter(select, ignore)
            name = self.program_name
        else:
            report = lint_source(program, select=select, ignore=ignore)
            name = "<request>"
        return {"program": name, **report.as_payload()}

    # -- write path --------------------------------------------------------

    def apply(
        self, changes: Union[ChangeSet, str]
    ) -> UpdateResult:
        """Apply one change batch and install the next EDB version.

        In-flight readers keep their admitted version; queries admitted
        after this returns see the new one.  Maintainable fixpoints
        cached on the previous head are migrated (copy + incremental
        maintenance over just this batch) so the new version starts
        warm; demand-specific (magic) and otherwise unmaintainable
        entries are dropped with the reason recorded.
        """
        if isinstance(changes, str):
            changes = ChangeSet.parse(changes)
        started = time.perf_counter()
        with self._write_lock:
            previous = self._snapshots._head
            report = self._session.apply(changes)
            if not report.inserted and not report.retracted:
                wall_ms = (time.perf_counter() - started) * 1000.0
                return UpdateResult(
                    version=self._snapshots.head_version,
                    added=0,
                    dropped=0,
                    maintained=0,
                    migrated=0,
                    fallbacks=(),
                    wall_ms=wall_ms,
                    effective=False,
                )
            version = self._snapshots.install(
                report.inserted, report.retracted
            )
            migrated, fallbacks = self._migrate_caches(
                previous, version, report.inserted, report.retracted
            )
            # Keep the warm-start checkpoint current: a crash after
            # this point restarts at this version, not at serve start.
            self._checkpoint_locked()
        wall_ms = (time.perf_counter() - started) * 1000.0
        with self._stats_lock:
            self.updates_total += 1
            self.migrated_total += migrated
            self.migration_fallbacks_total += len(fallbacks)
        return UpdateResult(
            version=version.number,
            added=report.added,
            dropped=report.dropped,
            maintained=len(report.maintained),
            migrated=migrated,
            fallbacks=tuple(fallbacks),
            wall_ms=wall_ms,
            effective=True,
        )

    def _migrate_caches(
        self,
        previous: SnapshotVersion,
        version: SnapshotVersion,
        inserted: Tuple,
        retracted: Tuple,
    ) -> Tuple[int, List[Tuple[str, str]]]:
        """Carry the previous head's fixpoints to the new version.

        Copy-then-maintain keeps the old version's store untouched for
        its in-flight readers while the new version inherits a warm,
        exactly-upgraded materialization (the same DRed + counting +
        semi-naive schedule ``Session.apply`` runs in place).
        """
        if previous.caches is None:
            return 0, []
        migrated = 0
        fallbacks: List[Tuple[str, str]] = []
        target = _caches_for(version)
        for key, entry in previous.caches.entries():
            if entry.rewrite == "magic":
                fallbacks.append(
                    (
                        entry.label,
                        "magic-rewritten fixpoint is demand-specific; "
                        "recomputed on next demand",
                    )
                )
                continue
            if not entry.maintainable:
                fallbacks.append(
                    (entry.label, "plan outside the maintainable fragment")
                )
                continue
            store = entry.store.copy()
            FixpointMaintainer(entry.compiled, store).apply(
                inserted, retracted, edb=version.store
            )
            with target._lock:
                target._fixpoints[key] = _CacheEntry(
                    store,
                    entry.compiled,
                    entry.maintainable,
                    entry.rewrite,
                    entry.label.rsplit(" @v", 1)[0]
                    + f" @v{version.number}",
                )
            migrated += 1
        return migrated, fallbacks

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """The ``/stats`` payload: admission counters, per-version
        refcounts, cache rates, and resident/spilled bytes.

        Per-version figures are measured with ONE shared visited-set,
        head first: shared structure — an overlay chain's common base,
        the shared interning table — is charged to the head exactly
        once, so summing the per-version rows never double counts
        (the same invariant ``memory_report(seen)`` gives composite
        stores, applied at the version-chain level).
        """
        head = self._snapshots._head
        head_caches = (
            head.caches.stats() if head.caches is not None else None
        )
        seen: set = set()
        versions: Dict[str, dict] = {}
        head_report = None
        for version in self._snapshots.versions_snapshot():
            report = version.store.memory_report(seen)
            if version is head:
                head_report = report
            versions[str(version.number)] = {
                "atoms": report.atom_count,
                "resident_bytes": report.resident_bytes,
                "spilled_bytes": report.spilled_bytes,
            }
        with self._stats_lock:
            counters = {
                "queries_total": self.queries_total,
                "updates_total": self.updates_total,
                "errors_total": self.errors_total,
                "active_streams": self.active_streams,
                "peak_active_streams": self.peak_active_streams,
                "migrated_fixpoints_total": self.migrated_total,
                "migration_fallbacks_total": self.migration_fallbacks_total,
            }
        return {
            "program": self.program_name,
            "uptime_seconds": time.time() - self.started_at,
            "warm_started": self.warm_started,
            "state_dir": (
                str(self._state.path) if self._state is not None else None
            ),
            **counters,
            "snapshots": self._snapshots.stats(),
            "head_caches": head_caches,
            "memory": {
                "edb_resident_bytes": head_report.resident_bytes,
                "edb_spilled_bytes": head_report.spilled_bytes,
                "edb_atoms": head_report.atom_count,
                "backend": head_report.backend,
                "versions": versions,
                "resident_bytes_total": sum(
                    row["resident_bytes"] for row in versions.values()
                ),
                "spilled_bytes_total": sum(
                    row["spilled_bytes"] for row in versions.values()
                ),
            },
        }
