"""repro.server — a concurrent reasoning server with snapshot-isolated
reads and live updates.

The layering, bottom-up:

* :mod:`~repro.server.snapshot` — MVCC over the EDB: immutable
  refcounted versions (``DeltaOverlay`` chains over frozen bases),
  installed atomically, collected when their last reader drains;
* :mod:`~repro.server.service` — :class:`ReasoningService`, the
  embeddable core: one thread-safe session for planning/compilation,
  per-version fixpoint caches migrated incrementally across updates;
* :mod:`~repro.server.protocol` / :mod:`~repro.server.daemon` — the
  newline-delimited-JSON wire format and the threaded TCP daemon;
* :mod:`~repro.server.client` — :class:`ReasoningClient`, the blocking
  client library the CLI subcommands and the benchmark use.

CLI: ``python -m repro serve PROGRAM`` / ``python -m repro client ...``.
"""

from .client import ReasoningClient, RemoteAnswers, ServerError
from .daemon import ReasoningServer
from .service import QueryResult, ReasoningService, UpdateResult, VersionCaches
from .snapshot import SnapshotLease, SnapshotManager, SnapshotVersion

__all__ = [
    "QueryResult",
    "ReasoningClient",
    "ReasoningServer",
    "ReasoningService",
    "RemoteAnswers",
    "ServerError",
    "SnapshotLease",
    "SnapshotManager",
    "SnapshotVersion",
    "UpdateResult",
    "VersionCaches",
]
