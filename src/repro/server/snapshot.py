"""MVCC snapshots of the EDB: immutable versions, refcounted leases.

The serving layer must let ``apply(ChangeSet)`` install a new EDB
version *while in-flight queries keep reading the old one*.  The shape
was already in the codebase: a :class:`~repro.storage.delta.DeltaOverlay`
is a writable delta over a frozen base.  Here that becomes a persistent
version chain:

* **version 0** is a frozen copy of the EDB at serve start;
* **version n+1** is a ``DeltaOverlay`` over version n's store, holding
  the batch's insertions in its delta and its retractions as
  tombstones — built in O(|change|), never touching version n — and
  then frozen (:meth:`~repro.storage.base.FactStore.freeze` turns the
  "base is frozen" convention into an enforced invariant);
* every ``flatten_depth`` versions the chain is collapsed into a fresh
  flat store, bounding per-read layer traversal without ever mutating
  a shared structure (the old chain stays valid for its readers).

Readers take a :class:`SnapshotLease` (refcount +1 under the manager's
lock); a version is garbage-collected when it is no longer the head and
its last lease is released — dropping the manager's reference lets
Python reclaim the overlay (the chain below survives as long as some
newer version's base chain, or an older lease, still needs it).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Tuple

from ..core.atoms import Atom
from ..storage import DeltaOverlay, FactStore, make_store

__all__ = ["SnapshotLease", "SnapshotManager", "SnapshotVersion"]


def _store_label(store) -> str:
    """The display/cache name of a ``store=`` choice (factories carry
    their name in ``__name__`` — e.g. ``sharded_store_factory``)."""
    if isinstance(store, str):
        return store
    return getattr(store, "__name__", type(store).__name__)


class SnapshotVersion:
    """One immutable EDB version: a frozen store plus its bookkeeping.

    ``caches`` is scratch space owned by the serving layer (per-version
    fixpoint materializations and star abstractions); the manager only
    carries it so that version GC drops the caches together with the
    store.
    """

    __slots__ = ("number", "store", "depth", "refs", "caches")

    def __init__(self, number: int, store: FactStore, depth: int):
        self.number = number
        self.store = store
        self.depth = depth
        self.refs = 0
        self.caches: Optional[object] = None

    def __repr__(self) -> str:
        return (
            f"SnapshotVersion(v{self.number}, {len(self.store)} atoms, "
            f"depth {self.depth}, {self.refs} reader(s))"
        )


class SnapshotLease:
    """A refcounted read lease on one :class:`SnapshotVersion`.

    Release is idempotent (streams release on exhaustion *and* carry a
    GC finalizer as a backstop for abandoned streams).  Usable as a
    context manager.
    """

    __slots__ = ("_manager", "_version", "_released")

    def __init__(self, manager: "SnapshotManager", version: SnapshotVersion):
        self._manager = manager
        self._version = version
        self._released = False

    @property
    def version(self) -> int:
        return self._version.number

    @property
    def store(self) -> FactStore:
        return self._version.store

    @property
    def snapshot(self) -> SnapshotVersion:
        return self._version

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the lease; the first call decrements, the rest no-op."""
        if self._released:
            return
        self._released = True
        self._manager._release(self._version)

    def __enter__(self) -> "SnapshotLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"SnapshotLease(v{self.version}, {state})"


class SnapshotManager:
    """The version store: installs immutable EDB versions, hands out
    leases, and collects versions nobody can read any more."""

    def __init__(
        self,
        atoms: Iterable[Atom] = (),
        *,
        store: str = "instance",
        flatten_depth: int = 8,
    ):
        if flatten_depth < 1:
            raise ValueError("flatten_depth must be >= 1")
        self._store_name = store
        self._flatten_depth = flatten_depth
        self._lock = threading.Lock()
        base = make_store(store, atoms)
        base.freeze()
        head = SnapshotVersion(0, base, depth=0)
        self._head = head
        #: Live versions: the head plus every version some lease holds.
        self._versions: Dict[int, SnapshotVersion] = {0: head}
        self.collected = 0
        self.flattened = 0

    # -- read side ---------------------------------------------------------

    @property
    def head_version(self) -> int:
        return self._head.number

    def current(self) -> SnapshotLease:
        """A lease on the newest version (refcount +1)."""
        with self._lock:
            version = self._head
            version.refs += 1
            return SnapshotLease(self, version)

    def _release(self, version: SnapshotVersion) -> None:
        with self._lock:
            version.refs -= 1
            self._collect_locked()

    # -- write side --------------------------------------------------------

    def install(
        self,
        inserted: Tuple[Atom, ...],
        retracted: Tuple[Atom, ...],
    ) -> SnapshotVersion:
        """Install the next version: head ∖ *retracted* ∪ *inserted*.

        O(|change|) on the overlay path; every ``flatten_depth``-th
        install materializes a flat copy instead, so reads never
        traverse more than ``flatten_depth`` layers.  The previous head
        is untouched either way — in-flight readers are unaffected.
        """
        with self._lock:
            previous = self._head
            if previous.depth + 1 >= self._flatten_depth:
                store = make_store(self._store_name)
                retracted_set = set(retracted)
                store.add_all(
                    atom
                    for atom in previous.store
                    if atom not in retracted_set
                )
                store.add_all(inserted)
                depth = 0
                self.flattened += 1
            else:
                overlay = DeltaOverlay(previous.store)
                overlay.discard_all(retracted)
                overlay.add_all(inserted)
                store = overlay
                depth = previous.depth + 1
            store.freeze()
            version = SnapshotVersion(
                previous.number + 1, store, depth=depth
            )
            self._versions[version.number] = version
            self._head = version
            self._collect_locked()
            return version

    # -- garbage collection ------------------------------------------------

    def _collect_locked(self) -> None:
        """Drop every non-head version with no readers (lock held)."""
        dead = [
            number
            for number, version in self._versions.items()
            if version.refs == 0 and version is not self._head
        ]
        for number in dead:
            del self._versions[number]
        self.collected += len(dead)

    # -- observability -----------------------------------------------------

    @property
    def live_versions(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._versions))

    def refcounts(self) -> Dict[int, int]:
        """Per-version reader refcounts for every live version."""
        with self._lock:
            return {
                number: version.refs
                for number, version in sorted(self._versions.items())
            }

    def versions_snapshot(self) -> Tuple[SnapshotVersion, ...]:
        """The live versions, head first then ascending — the
        measurement order that attributes shared structure (overlay
        base chains, interning tables) to the head."""
        with self._lock:
            head = self._head
            rest = sorted(
                (v for v in self._versions.values() if v is not head),
                key=lambda v: v.number,
            )
            return (head, *rest)

    def stats(self) -> dict:
        with self._lock:
            return {
                "head_version": self._head.number,
                "head_depth": self._head.depth,
                "head_atoms": len(self._head.store),
                "live_versions": len(self._versions),
                "refcounts": {
                    str(number): version.refs
                    for number, version in sorted(self._versions.items())
                },
                "collected": self.collected,
                "flattened": self.flattened,
                "flatten_depth": self._flatten_depth,
                "store": _store_label(self._store_name),
            }

    def __repr__(self) -> str:
        return (
            f"SnapshotManager(head=v{self._head.number}, "
            f"{len(self._versions)} live, {self.collected} collected)"
        )
