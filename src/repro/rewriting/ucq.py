"""Unfolding a CQ into a union of CQs by chunk-based resolution.

The enumeration explores the resolution graph breadth-first from q:
every node is a CQ of the (possibly infinite) union qΣ, and every
σ-resolvent through an MGCU (Definition 4.3) is an edge.  CQs are
canonicalized (output variables frozen, the rest renamed into a fixed
pool) so that variants meeting again are merged — the same device the
Section 4.3 algorithm and the Lemma 6.4 rewriting use.

Soundness/completeness contract (implicit in [16, 22], restated as
Theorem 4.7 through proof trees):

* every enumerated CQ evaluates soundly over the *raw database* — no
  chase, no nulls;
* if the enumeration exhausts (no new canonical CQ within the budgets),
  ``evaluate`` computes exactly cert(q, D, Σ) for every D;
* recursive programs generally have an infinite unfolding, so the
  budgets truncate and ``complete`` turns False — evaluation is then a
  sound under-approximation (the bounded-depth fragment of qΣ).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set, Tuple

from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant
from ..prooftree.canonical import canonical_form
from ..prooftree.resolution import resolvents
from ..storage import FactStore, StoreChoice, make_store

__all__ = ["UCQRewriting", "unfold"]


@dataclass
class UCQRewriting:
    """A (possibly truncated) finite fragment of the unfolding qΣ."""

    query: ConjunctiveQuery
    disjuncts: Tuple[ConjunctiveQuery, ...]
    complete: bool
    depth_reached: int
    generated: int          # resolvents produced, incl. duplicates

    def __len__(self) -> int:
        return len(self.disjuncts)

    def evaluate(
        self,
        database: Database,
        *,
        store: Optional[StoreChoice] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """Union of the disjuncts' evaluations over the raw database.

        Like every other evaluation path, this accepts any
        :class:`~repro.storage.FactStore` and reuses it in place —
        evaluation only reads, so no copy is made (the old behaviour
        rebuilt an ``Instance`` from scratch on *every* call and
        ignored the backend the caller had already chosen).  Passing
        ``store=`` (a backend name from :data:`repro.storage.BACKENDS`,
        a factory, or a store) loads the facts into that backend first.
        """
        if store is not None:
            instance = make_store(store, database)
        elif isinstance(database, FactStore):
            instance = database
        else:
            instance = make_store("instance", database)
        answers: Set[Tuple[Constant, ...]] = set()
        for disjunct in self.disjuncts:
            answers |= disjunct.evaluate(instance)
        return answers


def _canonical_key(query: ConjunctiveQuery):
    return (
        query.output,
        canonical_form(query.atoms, query.output_variables()),
    )


def unfold(
    query: ConjunctiveQuery,
    program: Program,
    *,
    max_depth: int = 8,
    max_cqs: int = 2000,
    max_atoms: Optional[int] = None,
) -> UCQRewriting:
    """Enumerate the unfolding of *query* under *program*.

    ``max_depth`` bounds the resolution distance from q, ``max_cqs``
    the number of canonical disjuncts, and ``max_atoms`` (default:
    unbounded) the size of each disjunct.  Hitting any budget marks the
    rewriting incomplete.
    """
    if max_depth < 0:
        raise ValueError("max_depth must be non-negative")
    normalized = program.single_head()

    seen = {_canonical_key(query)}
    disjuncts: List[ConjunctiveQuery] = [query]
    frontier: Deque[Tuple[ConjunctiveQuery, int]] = deque([(query, 0)])
    complete = True
    depth_reached = 0
    generated = 0

    while frontier:
        current, depth = frontier.popleft()
        if depth >= max_depth:
            # Unexpanded node: if it has any resolvent at all, the
            # enumeration is truncated.
            if any(
                True
                for tgd in normalized
                for _ in resolvents(current, tgd)
            ):
                complete = False
            continue
        for tgd in normalized:
            for resolvent in resolvents(current, tgd):
                generated += 1
                candidate = resolvent.query
                if max_atoms is not None and candidate.width() > max_atoms:
                    complete = False
                    continue
                key = _canonical_key(candidate)
                if key in seen:
                    continue
                if len(disjuncts) >= max_cqs:
                    complete = False
                    continue
                seen.add(key)
                disjuncts.append(candidate)
                depth_reached = max(depth_reached, depth + 1)
                frontier.append((candidate, depth + 1))

    return UCQRewriting(
        query=query,
        disjuncts=tuple(disjuncts),
        complete=complete,
        depth_reached=depth_reached,
        generated=generated,
    )
