"""Demand-driven (magic-set) rewriting of full programs.

The paper bounds the *space* of reasoning; this module bounds the
*relevance*: a bound-argument query (``q(Y) :- t(a, Y)``) over a full
(existential-free) program does not need the whole least fixpoint —
only the facts reachable from the query's constants.  The classical
answer is the magic-set transformation (Beeri & Ramakrishnan; the
generalized supplementary variant of Abiteboul–Hull–Vianu §13.3),
which the Vadalog system papers describe as the demand optimization of
their streaming pipeline.  Given a program Σ and a query q:

1. **Adornment propagation.**  The query's constants are the initial
   bound arguments.  Starting from a synthetic *goal rule* whose head
   carries one placeholder variable per distinct query constant (bound)
   plus the output variables (free), every reachable (predicate,
   adornment) pair is adorned by left-to-right sideways information
   passing through the rule bodies.

2. **Magic predicates.**  For each adorned IDB predicate ``p^α`` a
   predicate ``magic@p@α`` over the bound positions collects the
   *demanded* bindings; every rule defining ``p^α`` is guarded by it.

3. **Supplementary rules.**  Rule bodies are split into a chain of
   supplementary predicates (``sup@rule@i@α``) carrying exactly the
   bound variables still needed, so each demand rule reuses the join
   prefix instead of recomputing it (the "generalized supplementary"
   part; the zeroth supplementary is inlined as the magic guard).

The result is a standard full, single-head :class:`Program` evaluable
by the unchanged semi-naive engine, plus a **seed-fact generator**: one
ground magic fact per query built from the query's constants.  The
adorned program depends only on the query's *binding pattern*
(constants abstracted to placeholders), so sessions cache it per
(program, pattern) and re-seed per query — see
:meth:`AdornedProgram.instantiate`.

Asserted EDB facts of intensional predicates still flow into their
adorned versions through per-adornment copy rules
(``p@α(x̄) :- magic@p@α(x̄_b), p(x̄)``): in the rewritten program the
original predicate names are purely extensional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.atoms import Atom
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..core.tgd import TGD

__all__ = [
    "AdornedProgram",
    "MagicRewriting",
    "MagicNotApplicable",
    "adorn_program",
    "binding_pattern",
    "magic_rewrite",
    "query_constants",
]


class MagicNotApplicable(ValueError):
    """The (program, query) pair is outside the rewriting's fragment."""


def query_constants(query: ConjunctiveQuery) -> Tuple[Constant, ...]:
    """The distinct constants of the query body, in first-occurrence order.

    These are the query's *bound arguments*: the values demand
    propagates from.  The order is the calling convention between the
    cached adorned program's placeholders and the per-query seed fact.
    """
    seen: List[Constant] = []
    for atom in query.atoms:
        for term in atom.args:
            if isinstance(term, Constant) and term not in seen:
                seen.append(term)
    return tuple(seen)


def binding_pattern(query: ConjunctiveQuery) -> tuple:
    """A hashable key identifying the query up to its constant values.

    Two queries share a binding pattern iff they have the same shape
    (predicates, variable names, output tuple) and the same *placement*
    of constants — with constant identity abstracted to first-occurrence
    indices, so ``t(a, Y)`` and ``t(b, Y)`` share one adorned program.
    """
    const_index: Dict[Constant, int] = {}
    shape = []
    for atom in query.atoms:
        tokens: List[tuple] = []
        for term in atom.args:
            if isinstance(term, Constant):
                tokens.append(
                    ("c", const_index.setdefault(term, len(const_index)))
                )
            else:
                tokens.append(("v", term.name))
        shape.append((atom.predicate, tuple(tokens)))
    return (tuple(v.name for v in query.output), tuple(shape))


@dataclass(frozen=True)
class MagicRewriting:
    """One query's demand rewriting: program + rewritten query + seeds.

    ``program`` is the adorned demand program (shared with every query
    of the same binding pattern); ``query`` is the rewritten query over
    the adorned goal predicate; ``seed`` holds the ground magic facts
    the evaluation must be seeded with (one per rewriting).
    """

    adorned: "AdornedProgram"
    query: ConjunctiveQuery
    seed: Tuple[Atom, ...]
    source: ConjunctiveQuery
    constants: Tuple[Constant, ...]

    @property
    def program(self) -> Program:
        return self.adorned.program

    @property
    def cache_token(self) -> tuple:
        """A hashable identity for fixpoint caches: unlike the plain
        fixpoint, a magic materialization is *demand-specific* — valid
        only for this binding pattern and these seed constants.  The
        constants themselves (frozen, hashable) are the token — their
        string forms would collide ``Constant(1)`` with
        ``Constant("1")`` and serve one query's demand fixpoint to the
        other."""
        return (self.adorned.pattern, self.constants)

    def describe(self) -> str:
        return (
            f"magic — {len(self.program)} demand rule(s) over "
            f"{len(self.adorned.adorned_predicates)} adorned predicate(s), "
            f"{len(self.constants)} bound constant(s)"
        )


@dataclass(frozen=True)
class AdornedProgram:
    """The binding-pattern-level artifact a session caches.

    Everything here is constant-free with respect to the query: the
    query's constants appear only as the ``placeholders`` (bound
    variables of the goal rule).  :meth:`instantiate` turns it into a
    :class:`MagicRewriting` for one concrete query by substituting the
    actual constants into the seed fact and the rewritten query.
    """

    pattern: tuple
    program: Program
    goal_predicate: str        # adorned goal: the answer predicate
    magic_goal: str            # magic predicate seeded per query
    placeholders: Tuple[Variable, ...]
    output: Tuple[Variable, ...]
    adorned_predicates: Tuple[str, ...]
    magic_predicates: frozenset
    supplementary_predicates: Tuple[str, ...]
    #: Does demand actually restrict evaluation?  True iff some
    #: reachable intensional adornment has a bound position *and* none
    #: is all-free: an all-free adornment re-derives that predicate's
    #: entire fixpoint — plus magic/supplementary bookkeeping — which
    #: is never cheaper than the unrewritten plan (the planner's
    #: ``auto`` mode declines; forced ``magic`` still applies).
    restricts: bool = True

    def instantiate(self, query: ConjunctiveQuery) -> MagicRewriting:
        """The concrete rewriting of *query* (same binding pattern)."""
        if binding_pattern(query) != self.pattern:
            raise ValueError(
                "query does not match this adorned program's binding "
                "pattern"
            )
        constants = query_constants(query)
        seed = Atom(self.magic_goal, constants)
        goal_atom = Atom(
            self.goal_predicate, tuple(constants) + tuple(query.output)
        )
        rewritten = ConjunctiveQuery(
            tuple(query.output),
            (goal_atom,),
            head_predicate=query.head_predicate,
        )
        return MagicRewriting(
            adorned=self,
            query=rewritten,
            seed=(seed,),
            source=query,
            constants=constants,
        )


def adorn_program(
    program: Program, query: ConjunctiveQuery
) -> AdornedProgram:
    """Build the adorned demand program for *query*'s binding pattern.

    *program* must be full (existential-free); multi-head rules are
    normalized first.  The transformation is the generalized
    supplementary magic-set rewriting with the zeroth supplementary
    inlined as the magic guard; see the module docstring.
    """
    normalized = (
        program if program.is_single_head() else program.single_head()
    )
    if not normalized.is_full():
        raise MagicNotApplicable(
            "magic-set rewriting needs a full (existential-free) "
            "program; existential rules invent values demand cannot "
            "enumerate"
        )
    schema = normalized.schema()
    idb = normalized.head_predicates()
    # Names already spoken for: generated predicates must not collide.
    existing: Set[str] = set(schema) | {a.predicate for a in query.atoms}

    def unique(name: str) -> str:
        while name in existing:
            name += "@"
        existing.add(name)
        return name

    # The goal rule: one bound placeholder per distinct query constant,
    # then the (free) output variables.
    constants = query_constants(query)
    taken = {v.name for v in query.variables()}
    placeholders: List[Variable] = []
    counter = 0
    for _ in constants:
        while f"B@{counter}" in taken:
            counter += 1
        placeholders.append(Variable(f"B@{counter}"))
        counter += 1
    to_placeholder = dict(zip(constants, placeholders))

    def abstract(atom: Atom) -> Atom:
        return Atom(
            atom.predicate,
            tuple(
                to_placeholder.get(t, t) if isinstance(t, Constant) else t
                for t in atom.args
            ),
        )

    goal_base = unique("goal@")
    output = tuple(query.output)
    goal_head = Atom(goal_base, tuple(placeholders) + output)
    goal_rule = TGD(
        tuple(abstract(a) for a in query.atoms),
        (goal_head,),
        label="magic/goal",
    )
    goal_adorn = "b" * len(placeholders) + "f" * len(output)

    rules_for: Dict[str, List[Tuple[int, TGD]]] = {}
    for index, tgd in enumerate(normalized):
        rules_for.setdefault(tgd.head[0].predicate, []).append((index, tgd))
    goal_index = len(normalized.tgds)

    adorned_memo: Dict[Tuple[str, str], str] = {}
    magic_memo: Dict[Tuple[str, str], str] = {}

    def adorned_name(pred: str, adorn: str) -> str:
        key = (pred, adorn)
        if key not in adorned_memo:
            adorned_memo[key] = unique(f"{pred}@{adorn}")
        return adorned_memo[key]

    def magic_name(pred: str, adorn: str) -> str:
        key = (pred, adorn)
        if key not in magic_memo:
            magic_memo[key] = unique(f"magic@{pred}@{adorn}")
        return magic_memo[key]

    out: List[TGD] = []
    sup_names: List[str] = []
    seen: Set[Tuple[str, str]] = set()
    queue: List[Tuple[str, str]] = [(goal_base, goal_adorn)]
    while queue:
        pred, adorn = queue.pop(0)
        if (pred, adorn) in seen:
            continue
        seen.add((pred, adorn))
        if pred == goal_base:
            rules = [(goal_index, goal_rule)]
        else:
            rules = rules_for.get(pred, [])
            # Copy rule: asserted facts of the (now purely extensional)
            # original predicate satisfy the demanded adorned version.
            arity = schema[pred]
            xs = tuple(Variable(f"X@{j}") for j in range(arity))
            bound_xs = tuple(
                x for x, flag in zip(xs, adorn) if flag == "b"
            )
            out.append(
                TGD(
                    (Atom(magic_name(pred, adorn), bound_xs),
                     Atom(pred, xs)),
                    (Atom(adorned_name(pred, adorn), xs),),
                    label="magic/edb",
                )
            )
        for rule_index, tgd in rules:
            head = tgd.head[0]
            bound_head_args = tuple(
                t for t, flag in zip(head.args, adorn) if flag == "b"
            )
            guard = Atom(magic_name(pred, adorn), bound_head_args)
            bound_vars = {
                t for t in bound_head_args if isinstance(t, Variable)
            }
            body = list(tgd.body)
            last = len(body) - 1
            for i, batom in enumerate(body):
                if batom.predicate in idb:
                    beta = "".join(
                        "b"
                        if isinstance(t, Constant) or t in bound_vars
                        else "f"
                        for t in batom.args
                    )
                    queue.append((batom.predicate, beta))
                    demanded = tuple(
                        t for t, flag in zip(batom.args, beta)
                        if flag == "b"
                    )
                    out.append(
                        TGD(
                            (guard,),
                            (Atom(magic_name(batom.predicate, beta),
                                  demanded),),
                            label="magic/demand",
                        )
                    )
                    used = Atom(
                        adorned_name(batom.predicate, beta), batom.args
                    )
                else:
                    used = batom
                if i < last:
                    available = bound_vars | batom.variables()
                    needed = head.variables()
                    for later in body[i + 1:]:
                        needed |= later.variables()
                    sup_vars = tuple(
                        sorted(available & needed, key=lambda v: v.name)
                    )
                    sup_pred = unique(f"sup@{rule_index}@{i}@{adorn}")
                    sup_names.append(sup_pred)
                    sup_atom = Atom(sup_pred, sup_vars)
                    out.append(
                        TGD((guard, used), (sup_atom,), label="magic/sup")
                    )
                    guard = sup_atom
                    bound_vars = set(sup_vars)
                else:
                    out.append(
                        TGD(
                            (guard, used),
                            (Atom(adorned_name(pred, adorn), head.args),),
                            label="magic/rule",
                        )
                    )
    base_name = program.name or "program"
    return AdornedProgram(
        pattern=binding_pattern(query),
        program=Program(out, name=f"{base_name}+magic"),
        goal_predicate=adorned_name(goal_base, goal_adorn),
        magic_goal=magic_name(goal_base, goal_adorn),
        placeholders=tuple(placeholders),
        output=output,
        adorned_predicates=tuple(
            f"{p}@{a}" for p, a in sorted(seen)
        ),
        magic_predicates=frozenset(magic_memo.values()),
        supplementary_predicates=tuple(sup_names),
        restricts=(
            any(
                pred != goal_base and "b" in adorn
                for pred, adorn in seen
            )
            and not any(
                pred != goal_base and "b" not in adorn
                for pred, adorn in seen
            )
        ),
    )


def magic_rewrite(
    program: Program, query: ConjunctiveQuery
) -> MagicRewriting:
    """Adorn *program* for *query* and instantiate the seeds in one step.

    Sessions prefer :func:`adorn_program` + a per-binding-pattern cache
    (:meth:`repro.api.Session.plan` wires that up); this is the
    uncached convenience used by the planner when no session is
    involved.
    """
    return adorn_program(program, query).instantiate(query)
