"""UCQ unfolding (Section 4.1).

"It is known that given a CQ q and a set Σ of TGDs, we can unfold q
using the TGDs of Σ into an infinite union of CQs qΣ such that, for
every database D, cert(q, D, Σ) = qΣ(D)" — the resolution view of
certain answers that the proof-tree machinery of the paper refines.

:func:`unfold` performs the unfolding by exhaustive chunk-based
resolution over canonicalized CQs, bounded by depth and size budgets;
the result is directly evaluable over any database and reports whether
the enumeration was exhaustive (then the evaluation is *exact*, which
is the case for non-recursive programs) or truncated (then it is a
sound under-approximation).
"""

from .ucq import UCQRewriting, unfold

__all__ = ["UCQRewriting", "unfold"]
