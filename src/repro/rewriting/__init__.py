"""Query rewritings: UCQ unfolding and the magic-set demand transform.

**UCQ unfolding (Section 4.1).**  "It is known that given a CQ q and a
set Σ of TGDs, we can unfold q using the TGDs of Σ into an infinite
union of CQs qΣ such that, for every database D, cert(q, D, Σ) =
qΣ(D)" — the resolution view of certain answers that the proof-tree
machinery of the paper refines.  :func:`unfold` performs the unfolding
by exhaustive chunk-based resolution over canonicalized CQs, bounded by
depth and size budgets; the result is directly evaluable over any
database and reports whether the enumeration was exhaustive (then the
evaluation is *exact*, which is the case for non-recursive programs)
or truncated (then it is a sound under-approximation).

**Magic sets (demand transformation).**  :func:`magic_rewrite` turns a
(full program, bound query) pair into a demand-restricted Datalog
program plus seed facts, so the semi-naive engine derives only facts
relevant to the query's constants — the classical optimization the
Vadalog system papers describe for their streaming pipeline.  The
planner applies it as the ``rewrite`` dimension of a
:class:`~repro.api.planner.QueryPlan`.
"""

from .magic import (
    AdornedProgram,
    MagicNotApplicable,
    MagicRewriting,
    adorn_program,
    binding_pattern,
    magic_rewrite,
    query_constants,
)
from .ucq import UCQRewriting, unfold

__all__ = [
    "UCQRewriting",
    "unfold",
    "AdornedProgram",
    "MagicNotApplicable",
    "MagicRewriting",
    "adorn_program",
    "binding_pattern",
    "magic_rewrite",
    "query_constants",
]
